#include "dist/protocol.hpp"

#include "support/error.hpp"

namespace idxl::dist {

const char* msg_name(uint8_t type) {
  switch (static_cast<Msg>(type)) {
    case Msg::kHello: return "hello";
    case Msg::kHelloAck: return "hello-ack";
    case Msg::kSetup: return "setup";
    case Msg::kLaunch: return "launch";
    case Msg::kSingle: return "single";
    case Msg::kTaskDone: return "task-done";
    case Msg::kFence: return "fence";
    case Msg::kFenceAck: return "fence-ack";
    case Msg::kShutdown: return "shutdown";
    case Msg::kBye: return "bye";
    case Msg::kPing: return "ping";
  }
  return "unknown";
}

std::vector<std::byte> encode_hello(const Hello& h) {
  Serializer s;
  s.put_header();
  s.put_u32(h.rank);
  s.put_u32(h.nranks);
  s.put_u32(h.workers);
  s.put_u32(h.heartbeat_period_ms);
  s.put_u32(h.peer_stall_window_ms);
  s.put_string(h.fault_plan);
  return s.take();
}

Hello decode_hello(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  d.check_header("hello message");
  Hello h;
  h.rank = d.get_u32();
  h.nranks = d.get_u32();
  h.workers = d.get_u32();
  h.heartbeat_period_ms = d.get_u32();
  h.peer_stall_window_ms = d.get_u32();
  h.fault_plan = d.get_string();
  return h;
}

namespace {

void put_rect(Serializer& s, const Rect& r) {
  s.put_point(r.lo);
  s.put_point(r.hi);
}

Rect get_rect(Deserializer& d) {
  const Point lo = d.get_point();
  const Point hi = d.get_point();
  return Rect(lo, hi);
}

}  // namespace

std::vector<std::byte> encode_setup(const Setup& su) {
  Serializer s;
  s.put_header();
  s.put_u32(static_cast<uint32_t>(su.journal.size()));
  for (const SetupOp& op : su.journal) {
    s.put_u8(static_cast<uint8_t>(op.kind));
    serialize_domain(s, op.domain);
    s.put_u32(op.a);
    s.put_u32(op.b);
    s.put_string(op.name);
    put_rect(s, op.color_space);
    s.put_u32(static_cast<uint32_t>(op.subspaces.size()));
    for (const Domain& sub : op.subspaces) serialize_domain(s, sub);
    s.put_u8(op.disjointness);
    s.put_point(op.color);
  }
  s.put_u32(static_cast<uint32_t>(su.tasks.size()));
  for (const std::string& t : su.tasks) s.put_string(t);
  s.put_u32(static_cast<uint32_t>(su.storage.size()));
  for (const Setup::Storage& st : su.storage) {
    s.put_u32(st.region);
    s.put_u32(st.field);
    s.put_blob(st.bytes);
  }
  return s.take();
}

Setup decode_setup(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  d.check_header("setup message");
  Setup su;
  const uint32_t nops = d.get_u32();
  su.journal.reserve(nops);
  for (uint32_t i = 0; i < nops; ++i) {
    SetupOp op;
    op.kind = static_cast<SetupOp::Kind>(d.get_u8());
    op.domain = deserialize_domain(d);
    op.a = d.get_u32();
    op.b = d.get_u32();
    op.name = d.get_string();
    op.color_space = get_rect(d);
    const uint32_t nsub = d.get_u32();
    op.subspaces.reserve(nsub);
    for (uint32_t j = 0; j < nsub; ++j)
      op.subspaces.push_back(deserialize_domain(d));
    op.disjointness = d.get_u8();
    op.color = d.get_point();
    su.journal.push_back(std::move(op));
  }
  const uint32_t ntasks = d.get_u32();
  su.tasks.reserve(ntasks);
  for (uint32_t i = 0; i < ntasks; ++i) su.tasks.push_back(d.get_string());
  const uint32_t nstore = d.get_u32();
  su.storage.reserve(nstore);
  for (uint32_t i = 0; i < nstore; ++i) {
    Setup::Storage st;
    st.region = d.get_u32();
    st.field = d.get_u32();
    st.bytes = d.get_blob();
    su.storage.push_back(std::move(st));
  }
  IDXL_REQUIRE(d.done(), "trailing bytes after setup message");
  return su;
}

std::vector<std::byte> encode_task_done(const TaskDone& t) {
  Serializer s;
  s.put_header();
  s.put_u64(t.seq);
  s.put_u8(static_cast<uint8_t>(t.outcome.kind));
  s.put_u64(t.outcome.root);
  s.put_u32(t.outcome.attempts);
  s.put_string(t.outcome.message);
  s.put_f64(t.outcome.ret);
  s.put_blob(t.outcome.region_bytes);
  return s.take();
}

TaskDone decode_task_done(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  d.check_header("task-done message");
  TaskDone t;
  t.seq = d.get_u64();
  t.outcome.kind = static_cast<FaultKind>(d.get_u8());
  t.outcome.root = d.get_u64();
  t.outcome.attempts = d.get_u32();
  t.outcome.message = d.get_string();
  t.outcome.ret = d.get_f64();
  t.outcome.region_bytes = d.get_blob();
  IDXL_REQUIRE(d.done(), "trailing bytes after task-done message");
  return t;
}

std::vector<std::byte> encode_fence(uint64_t fence) {
  Serializer s;
  s.put_header();
  s.put_u64(fence);
  return s.take();
}

uint64_t decode_fence(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  d.check_header("fence message");
  return d.get_u64();
}

std::vector<std::byte> encode_fence_ack(const FenceAck& a) {
  Serializer s;
  s.put_header();
  s.put_u64(a.fence);
  s.put_blob(serialize_fault_report(a.report));
  return s.take();
}

FenceAck decode_fence_ack(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  d.check_header("fence-ack message");
  FenceAck a;
  a.fence = d.get_u64();
  a.report = deserialize_fault_report(d.get_blob());
  IDXL_REQUIRE(d.done(), "trailing bytes after fence-ack message");
  return a;
}

}  // namespace idxl::dist
