#include "dist/protocol.hpp"

#include <chrono>

#include "support/error.hpp"

namespace idxl::dist {

uint64_t steady_now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char* msg_name(uint8_t type) {
  switch (static_cast<Msg>(type)) {
    case Msg::kHello: return "hello";
    case Msg::kHelloAck: return "hello-ack";
    case Msg::kSetup: return "setup";
    case Msg::kLaunch: return "launch";
    case Msg::kSingle: return "single";
    case Msg::kTaskDone: return "task-done";
    case Msg::kFence: return "fence";
    case Msg::kFenceAck: return "fence-ack";
    case Msg::kShutdown: return "shutdown";
    case Msg::kBye: return "bye";
    case Msg::kPing: return "ping";
    case Msg::kRoute: return "route";
    case Msg::kRegionData: return "region-data";
    case Msg::kTelemetryReq: return "telemetry-req";
    case Msg::kTelemetry: return "telemetry";
  }
  return "unknown";
}

std::vector<std::byte> encode_hello(const Hello& h) {
  Serializer s;
  s.put_header();
  s.put_u32(h.rank);
  s.put_u32(h.nranks);
  s.put_u32(h.workers);
  s.put_u32(h.heartbeat_period_ms);
  s.put_u32(h.peer_stall_window_ms);
  s.put_u8(h.delta_transfers);
  s.put_u8(h.p2p);
  s.put_u8(h.enable_profiling);
  s.put_string(h.fault_plan);
  return s.take();
}

Hello decode_hello(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  d.check_header("hello message");
  Hello h;
  h.rank = d.get_u32();
  h.nranks = d.get_u32();
  h.workers = d.get_u32();
  h.heartbeat_period_ms = d.get_u32();
  h.peer_stall_window_ms = d.get_u32();
  h.delta_transfers = d.get_u8();
  h.p2p = d.get_u8();
  h.enable_profiling = d.get_u8();
  h.fault_plan = d.get_string();
  return h;
}

namespace {

void put_rect(Serializer& s, const Rect& r) {
  s.put_point(r.lo);
  s.put_point(r.hi);
}

Rect get_rect(Deserializer& d) {
  const Point lo = d.get_point();
  const Point hi = d.get_point();
  return Rect(lo, hi);
}

void put_trace_ctx(Serializer& s, const obs::TraceContext& ctx) {
  s.put_u64(ctx.launch);
  s.put_u64(ctx.span);
  s.put_u32(ctx.origin);
}

obs::TraceContext get_trace_ctx(Deserializer& d) {
  obs::TraceContext ctx;
  ctx.launch = d.get_u64();
  ctx.span = d.get_u64();
  ctx.origin = d.get_u32();
  return ctx;
}

}  // namespace

std::vector<std::byte> encode_setup(const Setup& su) {
  Serializer s;
  s.put_header();
  s.put_u32(static_cast<uint32_t>(su.journal.size()));
  for (const SetupOp& op : su.journal) {
    s.put_u8(static_cast<uint8_t>(op.kind));
    serialize_domain(s, op.domain);
    s.put_u32(op.a);
    s.put_u32(op.b);
    s.put_string(op.name);
    put_rect(s, op.color_space);
    s.put_u32(static_cast<uint32_t>(op.subspaces.size()));
    for (const Domain& sub : op.subspaces) serialize_domain(s, sub);
    s.put_u8(op.disjointness);
    s.put_point(op.color);
  }
  s.put_u32(static_cast<uint32_t>(su.tasks.size()));
  for (const std::string& t : su.tasks) s.put_string(t);
  s.put_u32(static_cast<uint32_t>(su.storage.size()));
  for (const Setup::Storage& st : su.storage) {
    s.put_u32(st.region);
    s.put_u32(st.field);
    s.put_blob(st.bytes);
  }
  return s.take();
}

Setup decode_setup(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  d.check_header("setup message");
  Setup su;
  const uint32_t nops = d.get_u32();
  su.journal.reserve(nops);
  for (uint32_t i = 0; i < nops; ++i) {
    SetupOp op;
    op.kind = static_cast<SetupOp::Kind>(d.get_u8());
    op.domain = deserialize_domain(d);
    op.a = d.get_u32();
    op.b = d.get_u32();
    op.name = d.get_string();
    op.color_space = get_rect(d);
    const uint32_t nsub = d.get_u32();
    op.subspaces.reserve(nsub);
    for (uint32_t j = 0; j < nsub; ++j)
      op.subspaces.push_back(deserialize_domain(d));
    op.disjointness = d.get_u8();
    op.color = d.get_point();
    su.journal.push_back(std::move(op));
  }
  const uint32_t ntasks = d.get_u32();
  su.tasks.reserve(ntasks);
  for (uint32_t i = 0; i < ntasks; ++i) su.tasks.push_back(d.get_string());
  const uint32_t nstore = d.get_u32();
  su.storage.reserve(nstore);
  for (uint32_t i = 0; i < nstore; ++i) {
    Setup::Storage st;
    st.region = d.get_u32();
    st.field = d.get_u32();
    st.bytes = d.get_blob();
    su.storage.push_back(std::move(st));
  }
  IDXL_REQUIRE(d.done(), "trailing bytes after setup message");
  return su;
}

std::vector<std::byte> encode_task_done(const TaskDone& t) {
  Serializer s;
  s.put_header();
  s.put_u64(t.seq);
  s.put_u32(t.data_dest);
  put_trace_ctx(s, t.ctx);
  s.put_u8(static_cast<uint8_t>(t.outcome.kind));
  s.put_u64(t.outcome.root);
  s.put_u32(t.outcome.attempts);
  s.put_string(t.outcome.message);
  s.put_f64(t.outcome.ret);
  s.put_u8(t.outcome.has_data ? 1 : 0);
  s.put_blob(t.outcome.region_bytes);
  return s.take();
}

TaskDone decode_task_done(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  d.check_header("task-done message");
  TaskDone t;
  t.seq = d.get_u64();
  t.data_dest = d.get_u32();
  t.ctx = get_trace_ctx(d);
  t.outcome.kind = static_cast<FaultKind>(d.get_u8());
  t.outcome.root = d.get_u64();
  t.outcome.attempts = d.get_u32();
  t.outcome.message = d.get_string();
  t.outcome.ret = d.get_f64();
  t.outcome.has_data = d.get_u8() != 0;
  t.outcome.region_bytes = d.get_blob();
  IDXL_REQUIRE(d.done(), "trailing bytes after task-done message");
  return t;
}

std::vector<std::byte> encode_route(const Route& r) {
  Serializer s;
  s.put_header();
  s.put_u32(r.src);
  s.put_u32(r.dest);
  s.put_u32(r.producer.id);
  s.put_u32(r.field);
  s.put_u64(r.version);
  put_rect(s, r.rect);
  s.put_u64(r.launch);
  return s.take();
}

Route decode_route(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  d.check_header("route message");
  Route r;
  r.src = d.get_u32();
  r.dest = d.get_u32();
  r.producer.id = d.get_u32();
  r.field = d.get_u32();
  r.version = d.get_u64();
  r.rect = get_rect(d);
  r.launch = d.get_u64();
  IDXL_REQUIRE(d.done(), "trailing bytes after route message");
  return r;
}

TaskLauncher make_xfer_launcher(TaskFnId task, const Route& r, uint32_t nranks) {
  XferArgs args;
  args.field = r.field;
  args.dest = r.dest;
  args.version = r.version;
  args.rect = r.rect;
  // owner_of(line(n), p1(src), n) == src: the launch-domain trick that pins
  // the no-op body (and its on_task_success data push) to the source rank.
  return TaskLauncher::for_task(task)
      .region(r.producer, {r.field}, Privilege::kReadWrite)
      .scalars(ArgBuffer::of(args))
      .at(Point::p1(r.src), Domain::line(static_cast<int64_t>(nranks)))
      .as_internal();
}

std::vector<std::byte> encode_region_data(const RegionData& r) {
  Serializer s;
  s.put_header();
  s.put_u64(r.seq);
  s.put_u32(r.dest);
  s.put_u64(r.sent_ns);
  put_trace_ctx(s, r.ctx);
  s.put_u32(static_cast<uint32_t>(r.patches.size()));
  for (const RegionPatch& p : r.patches) {
    s.put_u32(p.arg);
    s.put_u32(p.field);
    put_rect(s, p.rect);
    s.put_blob(p.bytes);
  }
  return s.take();
}

RegionData decode_region_data(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  d.check_header("region-data message");
  RegionData r;
  r.seq = d.get_u64();
  r.dest = d.get_u32();
  r.sent_ns = d.get_u64();
  r.ctx = get_trace_ctx(d);
  const uint32_t n = d.get_u32();
  r.patches.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    RegionPatch p;
    p.arg = d.get_u32();
    p.field = d.get_u32();
    p.rect = get_rect(d);
    p.bytes = d.get_blob();
    r.patches.push_back(std::move(p));
  }
  IDXL_REQUIRE(d.done(), "trailing bytes after region-data message");
  return r;
}

std::vector<std::byte> encode_fence(uint64_t fence) {
  Serializer s;
  s.put_header();
  s.put_u64(fence);
  return s.take();
}

uint64_t decode_fence(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  d.check_header("fence message");
  return d.get_u64();
}

std::vector<std::byte> encode_fence_ack(const FenceAck& a) {
  Serializer s;
  s.put_header();
  s.put_u64(a.fence);
  s.put_blob(serialize_fault_report(a.report));
  s.put_u64(a.net.bytes_hub);
  s.put_u64(a.net.bytes_relay);
  s.put_u64(a.net.bytes_p2p);
  s.put_u64(a.net.transfers);
  s.put_blob(a.metrics);
  return s.take();
}

FenceAck decode_fence_ack(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  d.check_header("fence-ack message");
  FenceAck a;
  a.fence = d.get_u64();
  a.report = deserialize_fault_report(d.get_blob());
  a.net.bytes_hub = d.get_u64();
  a.net.bytes_relay = d.get_u64();
  a.net.bytes_p2p = d.get_u64();
  a.net.transfers = d.get_u64();
  a.metrics = d.get_blob();
  IDXL_REQUIRE(d.done(), "trailing bytes after fence-ack message");
  return a;
}

std::vector<std::byte> serialize_metrics_snapshot(const obs::MetricsSnapshot& m) {
  Serializer s;
  s.put_u64(m.taken_ns);
  s.put_u32(static_cast<uint32_t>(m.families.size()));
  for (const obs::FamilySnapshot& f : m.families) {
    s.put_string(f.name);
    s.put_string(f.help);
    s.put_u8(static_cast<uint8_t>(f.kind));
    s.put_u32(static_cast<uint32_t>(f.series.size()));
    for (const obs::SeriesSnapshot& series : f.series) {
      s.put_u32(static_cast<uint32_t>(series.labels.size()));
      for (const auto& [k, v] : series.labels) {
        s.put_string(k);
        s.put_string(v);
      }
      s.put_u64(series.counter);
      s.put_i64(series.gauge);
      s.put_u64(series.count);
      s.put_u64(series.sum);
      s.put_u32(static_cast<uint32_t>(series.buckets.size()));
      for (const auto& [le, cumulative] : series.buckets) {
        s.put_u64(le);
        s.put_u64(cumulative);
      }
    }
  }
  return s.take();
}

obs::MetricsSnapshot deserialize_metrics_snapshot(
    const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  obs::MetricsSnapshot m;
  m.taken_ns = d.get_u64();
  const uint32_t nfamilies = d.get_u32();
  m.families.reserve(nfamilies);
  for (uint32_t i = 0; i < nfamilies; ++i) {
    obs::FamilySnapshot f;
    f.name = d.get_string();
    f.help = d.get_string();
    f.kind = static_cast<obs::MetricKind>(d.get_u8());
    const uint32_t nseries = d.get_u32();
    f.series.reserve(nseries);
    for (uint32_t j = 0; j < nseries; ++j) {
      obs::SeriesSnapshot series;
      const uint32_t nlabels = d.get_u32();
      series.labels.reserve(nlabels);
      for (uint32_t k = 0; k < nlabels; ++k) {
        std::string key = d.get_string();
        series.labels.emplace_back(std::move(key), d.get_string());
      }
      series.counter = d.get_u64();
      series.gauge = d.get_i64();
      series.count = d.get_u64();
      series.sum = d.get_u64();
      const uint32_t nbuckets = d.get_u32();
      series.buckets.reserve(nbuckets);
      for (uint32_t b = 0; b < nbuckets; ++b) {
        const uint64_t le = d.get_u64();
        series.buckets.emplace_back(le, d.get_u64());
      }
      f.series.push_back(std::move(series));
    }
    m.families.push_back(std::move(f));
  }
  IDXL_REQUIRE(d.done(), "trailing bytes after metrics snapshot");
  return m;
}

std::vector<std::byte> encode_telemetry(const Telemetry& t) {
  Serializer s;
  s.put_header();
  s.put_u32(t.rank);
  s.put_u8(t.flavor);
  s.put_u64(t.epoch_ns);
  s.put_u32(static_cast<uint32_t>(t.names.size()));
  for (const std::string& n : t.names) s.put_string(n);
  s.put_u32(static_cast<uint32_t>(t.spans.size()));
  for (const ProfileEvent& ev : t.spans) {
    s.put_u32(ev.name);
    s.put_u8(static_cast<uint8_t>(ev.cat));
    s.put_i64(ev.worker);
    s.put_u32(ev.tid);
    s.put_u64(ev.start_ns);
    s.put_u64(ev.dur_ns);
    s.put_u64(ev.seq);
    s.put_u64(ev.queue_wait_ns);
    s.put_u64(ev.launch);
    s.put_u64(ev.parent);
    s.put_u32(ev.origin);
  }
  s.put_u32(static_cast<uint32_t>(t.samples.size()));
  for (const TaskSample& sample : t.samples) {
    s.put_u64(sample.seq);
    s.put_u64(sample.dur_ns);
    s.put_u32(static_cast<uint32_t>(sample.deps.size()));
    for (uint64_t dep : sample.deps) s.put_u64(dep);
  }
  s.put_u32(static_cast<uint32_t>(t.recent.size()));
  for (const obs::FlightEvent& ev : t.recent) {
    s.put_u64(ev.ts_ns);
    s.put_u64(ev.seq);
    s.put_u64(ev.launch);
    s.put_u64(ev.edge);
    for (int i = 0; i < obs::FlightEvent::kMaxPointDim; ++i)
      s.put_i64(ev.coord[i]);
    s.put_u8(static_cast<uint8_t>(ev.kind));
    s.put_u8(static_cast<uint8_t>(ev.detail));
    s.put_u8(static_cast<uint8_t>(ev.dim));
    s.put_i64(ev.worker);
  }
  s.put_blob(serialize_metrics_snapshot(t.metrics));
  s.put_u64(t.completed);
  s.put_u64(t.pending);
  s.put_u64(t.window_ms);
  s.put_u32(static_cast<uint32_t>(t.blocked.size()));
  for (const obs::BlockedTask& b : t.blocked) {
    s.put_u64(b.seq);
    s.put_u64(b.launch);
    s.put_string(b.label);
    s.put_u32(static_cast<uint32_t>(b.waits_for.size()));
    for (uint64_t dep : b.waits_for) s.put_u64(dep);
  }
  s.put_u32(static_cast<uint32_t>(t.pending_externals.size()));
  for (uint64_t seq : t.pending_externals) s.put_u64(seq);
  return s.take();
}

Telemetry decode_telemetry(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  d.check_header("telemetry message");
  Telemetry t;
  t.rank = d.get_u32();
  t.flavor = d.get_u8();
  t.epoch_ns = d.get_u64();
  const uint32_t nnames = d.get_u32();
  t.names.reserve(nnames);
  for (uint32_t i = 0; i < nnames; ++i) t.names.push_back(d.get_string());
  const uint32_t nspans = d.get_u32();
  t.spans.reserve(nspans);
  for (uint32_t i = 0; i < nspans; ++i) {
    ProfileEvent ev;
    ev.name = d.get_u32();
    ev.cat = static_cast<ProfCategory>(d.get_u8());
    ev.worker = static_cast<int32_t>(d.get_i64());
    ev.tid = d.get_u32();
    ev.start_ns = d.get_u64();
    ev.dur_ns = d.get_u64();
    ev.seq = d.get_u64();
    ev.queue_wait_ns = d.get_u64();
    ev.launch = d.get_u64();
    ev.parent = d.get_u64();
    ev.origin = d.get_u32();
    t.spans.push_back(ev);
  }
  const uint32_t nsamples = d.get_u32();
  t.samples.reserve(nsamples);
  for (uint32_t i = 0; i < nsamples; ++i) {
    TaskSample sample;
    sample.seq = d.get_u64();
    sample.dur_ns = d.get_u64();
    const uint32_t ndeps = d.get_u32();
    sample.deps.reserve(ndeps);
    for (uint32_t j = 0; j < ndeps; ++j) sample.deps.push_back(d.get_u64());
    t.samples.push_back(std::move(sample));
  }
  const uint32_t nrecent = d.get_u32();
  t.recent.reserve(nrecent);
  for (uint32_t i = 0; i < nrecent; ++i) {
    obs::FlightEvent ev;
    ev.ts_ns = d.get_u64();
    ev.seq = d.get_u64();
    ev.launch = d.get_u64();
    ev.edge = d.get_u64();
    for (int j = 0; j < obs::FlightEvent::kMaxPointDim; ++j)
      ev.coord[j] = d.get_i64();
    ev.kind = static_cast<obs::LifecycleEvent>(d.get_u8());
    ev.detail = static_cast<obs::LifecycleDetail>(d.get_u8());
    ev.dim = static_cast<int8_t>(d.get_u8());
    ev.worker = static_cast<int32_t>(d.get_i64());
    t.recent.push_back(ev);
  }
  t.metrics = deserialize_metrics_snapshot(d.get_blob());
  t.completed = d.get_u64();
  t.pending = d.get_u64();
  t.window_ms = d.get_u64();
  const uint32_t nblocked = d.get_u32();
  t.blocked.reserve(nblocked);
  for (uint32_t i = 0; i < nblocked; ++i) {
    obs::BlockedTask b;
    b.seq = d.get_u64();
    b.launch = d.get_u64();
    b.label = d.get_string();
    const uint32_t ndeps = d.get_u32();
    b.waits_for.reserve(ndeps);
    for (uint32_t j = 0; j < ndeps; ++j) b.waits_for.push_back(d.get_u64());
    t.blocked.push_back(std::move(b));
  }
  const uint32_t nexternals = d.get_u32();
  t.pending_externals.reserve(nexternals);
  for (uint32_t i = 0; i < nexternals; ++i)
    t.pending_externals.push_back(d.get_u64());
  IDXL_REQUIRE(d.done(), "trailing bytes after telemetry message");
  return t;
}

}  // namespace idxl::dist
