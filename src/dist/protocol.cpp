#include "dist/protocol.hpp"

#include <chrono>

#include "support/error.hpp"

namespace idxl::dist {

uint64_t steady_now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char* msg_name(uint8_t type) {
  switch (static_cast<Msg>(type)) {
    case Msg::kHello: return "hello";
    case Msg::kHelloAck: return "hello-ack";
    case Msg::kSetup: return "setup";
    case Msg::kLaunch: return "launch";
    case Msg::kSingle: return "single";
    case Msg::kTaskDone: return "task-done";
    case Msg::kFence: return "fence";
    case Msg::kFenceAck: return "fence-ack";
    case Msg::kShutdown: return "shutdown";
    case Msg::kBye: return "bye";
    case Msg::kPing: return "ping";
    case Msg::kRoute: return "route";
    case Msg::kRegionData: return "region-data";
  }
  return "unknown";
}

std::vector<std::byte> encode_hello(const Hello& h) {
  Serializer s;
  s.put_header();
  s.put_u32(h.rank);
  s.put_u32(h.nranks);
  s.put_u32(h.workers);
  s.put_u32(h.heartbeat_period_ms);
  s.put_u32(h.peer_stall_window_ms);
  s.put_u8(h.delta_transfers);
  s.put_u8(h.p2p);
  s.put_string(h.fault_plan);
  return s.take();
}

Hello decode_hello(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  d.check_header("hello message");
  Hello h;
  h.rank = d.get_u32();
  h.nranks = d.get_u32();
  h.workers = d.get_u32();
  h.heartbeat_period_ms = d.get_u32();
  h.peer_stall_window_ms = d.get_u32();
  h.delta_transfers = d.get_u8();
  h.p2p = d.get_u8();
  h.fault_plan = d.get_string();
  return h;
}

namespace {

void put_rect(Serializer& s, const Rect& r) {
  s.put_point(r.lo);
  s.put_point(r.hi);
}

Rect get_rect(Deserializer& d) {
  const Point lo = d.get_point();
  const Point hi = d.get_point();
  return Rect(lo, hi);
}

}  // namespace

std::vector<std::byte> encode_setup(const Setup& su) {
  Serializer s;
  s.put_header();
  s.put_u32(static_cast<uint32_t>(su.journal.size()));
  for (const SetupOp& op : su.journal) {
    s.put_u8(static_cast<uint8_t>(op.kind));
    serialize_domain(s, op.domain);
    s.put_u32(op.a);
    s.put_u32(op.b);
    s.put_string(op.name);
    put_rect(s, op.color_space);
    s.put_u32(static_cast<uint32_t>(op.subspaces.size()));
    for (const Domain& sub : op.subspaces) serialize_domain(s, sub);
    s.put_u8(op.disjointness);
    s.put_point(op.color);
  }
  s.put_u32(static_cast<uint32_t>(su.tasks.size()));
  for (const std::string& t : su.tasks) s.put_string(t);
  s.put_u32(static_cast<uint32_t>(su.storage.size()));
  for (const Setup::Storage& st : su.storage) {
    s.put_u32(st.region);
    s.put_u32(st.field);
    s.put_blob(st.bytes);
  }
  return s.take();
}

Setup decode_setup(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  d.check_header("setup message");
  Setup su;
  const uint32_t nops = d.get_u32();
  su.journal.reserve(nops);
  for (uint32_t i = 0; i < nops; ++i) {
    SetupOp op;
    op.kind = static_cast<SetupOp::Kind>(d.get_u8());
    op.domain = deserialize_domain(d);
    op.a = d.get_u32();
    op.b = d.get_u32();
    op.name = d.get_string();
    op.color_space = get_rect(d);
    const uint32_t nsub = d.get_u32();
    op.subspaces.reserve(nsub);
    for (uint32_t j = 0; j < nsub; ++j)
      op.subspaces.push_back(deserialize_domain(d));
    op.disjointness = d.get_u8();
    op.color = d.get_point();
    su.journal.push_back(std::move(op));
  }
  const uint32_t ntasks = d.get_u32();
  su.tasks.reserve(ntasks);
  for (uint32_t i = 0; i < ntasks; ++i) su.tasks.push_back(d.get_string());
  const uint32_t nstore = d.get_u32();
  su.storage.reserve(nstore);
  for (uint32_t i = 0; i < nstore; ++i) {
    Setup::Storage st;
    st.region = d.get_u32();
    st.field = d.get_u32();
    st.bytes = d.get_blob();
    su.storage.push_back(std::move(st));
  }
  IDXL_REQUIRE(d.done(), "trailing bytes after setup message");
  return su;
}

std::vector<std::byte> encode_task_done(const TaskDone& t) {
  Serializer s;
  s.put_header();
  s.put_u64(t.seq);
  s.put_u32(t.data_dest);
  s.put_u8(static_cast<uint8_t>(t.outcome.kind));
  s.put_u64(t.outcome.root);
  s.put_u32(t.outcome.attempts);
  s.put_string(t.outcome.message);
  s.put_f64(t.outcome.ret);
  s.put_u8(t.outcome.has_data ? 1 : 0);
  s.put_blob(t.outcome.region_bytes);
  return s.take();
}

TaskDone decode_task_done(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  d.check_header("task-done message");
  TaskDone t;
  t.seq = d.get_u64();
  t.data_dest = d.get_u32();
  t.outcome.kind = static_cast<FaultKind>(d.get_u8());
  t.outcome.root = d.get_u64();
  t.outcome.attempts = d.get_u32();
  t.outcome.message = d.get_string();
  t.outcome.ret = d.get_f64();
  t.outcome.has_data = d.get_u8() != 0;
  t.outcome.region_bytes = d.get_blob();
  IDXL_REQUIRE(d.done(), "trailing bytes after task-done message");
  return t;
}

std::vector<std::byte> encode_route(const Route& r) {
  Serializer s;
  s.put_header();
  s.put_u32(r.src);
  s.put_u32(r.dest);
  s.put_u32(r.producer.id);
  s.put_u32(r.field);
  s.put_u64(r.version);
  put_rect(s, r.rect);
  return s.take();
}

Route decode_route(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  d.check_header("route message");
  Route r;
  r.src = d.get_u32();
  r.dest = d.get_u32();
  r.producer.id = d.get_u32();
  r.field = d.get_u32();
  r.version = d.get_u64();
  r.rect = get_rect(d);
  IDXL_REQUIRE(d.done(), "trailing bytes after route message");
  return r;
}

TaskLauncher make_xfer_launcher(TaskFnId task, const Route& r, uint32_t nranks) {
  XferArgs args;
  args.field = r.field;
  args.dest = r.dest;
  args.version = r.version;
  args.rect = r.rect;
  // owner_of(line(n), p1(src), n) == src: the launch-domain trick that pins
  // the no-op body (and its on_task_success data push) to the source rank.
  return TaskLauncher::for_task(task)
      .region(r.producer, {r.field}, Privilege::kReadWrite)
      .scalars(ArgBuffer::of(args))
      .at(Point::p1(r.src), Domain::line(static_cast<int64_t>(nranks)))
      .as_internal();
}

std::vector<std::byte> encode_region_data(const RegionData& r) {
  Serializer s;
  s.put_header();
  s.put_u64(r.seq);
  s.put_u32(r.dest);
  s.put_u64(r.sent_ns);
  s.put_u32(static_cast<uint32_t>(r.patches.size()));
  for (const RegionPatch& p : r.patches) {
    s.put_u32(p.arg);
    s.put_u32(p.field);
    put_rect(s, p.rect);
    s.put_blob(p.bytes);
  }
  return s.take();
}

RegionData decode_region_data(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  d.check_header("region-data message");
  RegionData r;
  r.seq = d.get_u64();
  r.dest = d.get_u32();
  r.sent_ns = d.get_u64();
  const uint32_t n = d.get_u32();
  r.patches.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    RegionPatch p;
    p.arg = d.get_u32();
    p.field = d.get_u32();
    p.rect = get_rect(d);
    p.bytes = d.get_blob();
    r.patches.push_back(std::move(p));
  }
  IDXL_REQUIRE(d.done(), "trailing bytes after region-data message");
  return r;
}

std::vector<std::byte> encode_fence(uint64_t fence) {
  Serializer s;
  s.put_header();
  s.put_u64(fence);
  return s.take();
}

uint64_t decode_fence(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  d.check_header("fence message");
  return d.get_u64();
}

std::vector<std::byte> encode_fence_ack(const FenceAck& a) {
  Serializer s;
  s.put_header();
  s.put_u64(a.fence);
  s.put_blob(serialize_fault_report(a.report));
  s.put_u64(a.net.bytes_hub);
  s.put_u64(a.net.bytes_relay);
  s.put_u64(a.net.bytes_p2p);
  s.put_u64(a.net.transfers);
  return s.take();
}

FenceAck decode_fence_ack(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  d.check_header("fence-ack message");
  FenceAck a;
  a.fence = d.get_u64();
  a.report = deserialize_fault_report(d.get_blob());
  a.net.bytes_hub = d.get_u64();
  a.net.bytes_relay = d.get_u64();
  a.net.bytes_p2p = d.get_u64();
  a.net.transfers = d.get_u64();
  IDXL_REQUIRE(d.done(), "trailing bytes after fence-ack message");
  return a;
}

}  // namespace idxl::dist
