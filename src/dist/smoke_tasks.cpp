#include "dist/smoke_tasks.hpp"

#include <cstdlib>

#include "dist/task_registry.hpp"

namespace idxl::dist::smoke {

namespace {

double weight(int64_t offset, int64_t radius) {
  // PRK star weights, matching apps::stencil_weight.
  return 1.0 / (2.0 * static_cast<double>(std::abs(offset)) *
                static_cast<double>(radius)) *
         (offset > 0 ? 1.0 : -1.0);
}

}  // namespace

void stencil_body(TaskContext& ctx) {
  const auto& a = ctx.arg<StencilArgs>();
  const Rect interior(Point::p2(a.radius, a.radius),
                      Point::p2(a.nx - 1 - a.radius, a.ny - 1 - a.radius));
  auto in = ctx.region(0).accessor<double>(a.fin);
  auto out = ctx.region(1).accessor<double>(a.fout);
  ctx.region(1).domain().for_each([&](const Point& p) {
    if (!interior.contains(p)) return;
    double acc = out.read(p);
    for (int64_t k = 1; k <= a.radius; ++k) {
      acc += weight(k, a.radius) * in.read(Point::p2(p[0] + k, p[1]));
      acc += weight(-k, a.radius) * in.read(Point::p2(p[0] - k, p[1]));
      acc += weight(k, a.radius) * in.read(Point::p2(p[0], p[1] + k));
      acc += weight(-k, a.radius) * in.read(Point::p2(p[0], p[1] - k));
    }
    out.write(p, acc);
  });
}

void increment_body(TaskContext& ctx) {
  const auto& a = ctx.arg<StencilArgs>();
  auto in = ctx.region(0).accessor<double>(a.fin);
  ctx.region(0).domain().for_each(
      [&](const Point& p) { in.write(p, in.read(p) + 1.0); });
}

IDXL_DIST_REGISTER_TASK(smoke_stencil, stencil_body);
IDXL_DIST_REGISTER_TASK(smoke_increment, increment_body);

}  // namespace idxl::dist::smoke
