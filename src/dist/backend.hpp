#pragma once

#include <memory>
#include <string>

#include "dist/dist_runtime.hpp"
#include "shard/sharded_runtime.hpp"

namespace idxl::dist {

/// The three RuntimeApi backends (docs/DISTRIBUTED.md):
///  * kLocal — one process, one thread pool (Runtime).
///  * kSharded — in-process control replication (ShardedRuntime).
///  * kDist — real multi-process execution (DistributedRuntime).
enum class Backend { kLocal, kSharded, kDist };

const char* backend_name(Backend b);

struct BackendConfig {
  Backend backend = Backend::kLocal;
  /// Local runtime configuration; the sharded/dist backends derive their
  /// per-shard / per-process runtime from it.
  RuntimeConfig runtime;
  /// Shard count for kSharded (IDXL_SHARDS overrides).
  uint32_t shards = 2;
  /// Process count for kDist (IDXL_DIST_RANKS overrides); dist.runtime is
  /// replaced by `runtime` above.
  DistConfig dist;
};

/// Construct the backend `config` selects, with environment overrides:
/// IDXL_BACKEND=local|sharded|dist picks the backend, IDXL_SHARDS and
/// IDXL_DIST_RANKS size it. Workloads written against RuntimeApi run
/// unmodified under any of the three — the env vars are the switch.
std::unique_ptr<RuntimeApi> make_runtime(BackendConfig config = {});

}  // namespace idxl::dist
