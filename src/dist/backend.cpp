#include "dist/backend.hpp"

#include <cstdlib>

#include "support/error.hpp"

namespace idxl::dist {

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kLocal: return "local";
    case Backend::kSharded: return "sharded";
    case Backend::kDist: return "dist";
  }
  return "unknown";
}

namespace {

uint32_t env_u32(const char* name, uint32_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long parsed = std::strtol(v, nullptr, 10);
  IDXL_REQUIRE(parsed >= 1, std::string(name) + " must be a positive integer");
  return static_cast<uint32_t>(parsed);
}

}  // namespace

std::unique_ptr<RuntimeApi> make_runtime(BackendConfig config) {
  Backend backend = config.backend;
  if (const char* env = std::getenv("IDXL_BACKEND");
      env != nullptr && *env != '\0') {
    const std::string name(env);
    if (name == "local") backend = Backend::kLocal;
    else if (name == "sharded") backend = Backend::kSharded;
    else if (name == "dist") backend = Backend::kDist;
    else throw RuntimeError("IDXL_BACKEND must be local, sharded or dist (got '" +
                            name + "')");
  }
  switch (backend) {
    case Backend::kLocal:
      return std::make_unique<Runtime>(config.runtime);
    case Backend::kSharded: {
      ShardedConfig sc;
      sc.shards = env_u32("IDXL_SHARDS", config.shards);
      sc.workers_per_shard =
          config.runtime.workers == 0 ? 1 : config.runtime.workers;
      sc.enable_index_launches = config.runtime.enable_index_launches;
      sc.enable_dynamic_checks = config.runtime.enable_dynamic_checks;
      sc.enable_verdict_cache = config.runtime.enable_verdict_cache;
      sc.fault_plan = config.runtime.fault_plan;
      return std::make_unique<ShardedRuntime>(std::move(sc));
    }
    case Backend::kDist: {
      DistConfig dc = config.dist;
      dc.runtime = config.runtime;
      dc.ranks = env_u32("IDXL_DIST_RANKS", dc.ranks);
      return std::make_unique<DistributedRuntime>(std::move(dc));
    }
  }
  throw RuntimeError("unreachable backend");
}

}  // namespace idxl::dist
