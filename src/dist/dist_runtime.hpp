#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/clock.hpp"
#include "net/connection.hpp"
#include "dist/protocol.hpp"
#include "dist/version_map.hpp"
#include "obs/trace_merge.hpp"
#include "runtime/runtime.hpp"

namespace idxl::dist {

/// Deterministic point → owning-rank map shared by every process of a run:
/// contiguous, balanced blocks of the row-major point enumeration. Domains
/// with at most one point (single launches, fills) live on rank 0.
inline uint32_t owner_of(const Domain& domain, const Point& p, uint32_t nranks) {
  const int64_t vol = domain.volume();
  if (vol <= 1 || nranks <= 1) return 0;
  const int64_t idx = domain.linear_index(p);
  return static_cast<uint32_t>(idx * static_cast<int64_t>(nranks) / vol);
}

struct DistConfig {
  /// Total process count, the driver included. 1 = degenerate local run.
  uint32_t ranks = 2;
  /// Per-process local runtime configuration (thread-pool width, watchdog,
  /// fault plan ...). The distributed hooks are installed on top.
  RuntimeConfig runtime;
  /// Exec mode: `host:port` of a pre-started `idxl-noded --listen` per
  /// worker rank (ranks - 1 entries). Empty = fork mode: workers are forked
  /// from this process before any thread exists and inherit forest and task
  /// registrations by memory.
  std::vector<std::string> workers;
  uint32_t heartbeat_period_ms = 1000;
  /// A peer silent past this window raises idxl_net_peer_stalls_total.
  uint32_t peer_stall_window_ms = 10000;
  /// Cross-check every rank's FaultReport at each fence; a divergence (a
  /// replication bug) throws RuntimeError.
  bool verify_reports = true;
  /// Delta data plane (docs/DISTRIBUTED.md "Data plane"): the driver tracks
  /// which version of each (region, field, sub-rectangle) every rank holds
  /// and ships only stale spans to the rank that actually reads them. Off =
  /// the star-hub baseline: every task outcome carries its full written
  /// bytes to every rank. Auto-disabled beyond 64 ranks (the currency
  /// bitmask) — the star-hub path has no such limit.
  bool delta_transfers = true;
  /// Direct worker↔worker links for delta payloads (fork mode only: exec
  /// daemons have no route to each other and always relay via the driver).
  bool p2p = true;
  /// Test hook: bring the peer links up, then sever them before first use,
  /// so delta payload sends genuinely fail over to the driver relay.
  bool fail_peer_links = false;
  /// Write the clock-aligned merged Chrome trace of every rank here at
  /// shutdown (forces profiling on in every process). The IDXL_TRACE env
  /// var overrides: "1" means "idxl_trace.json", any other value is the
  /// path, "0"/unset defers to this field.
  std::string trace_path;
};

/// Aggregated data-plane accounting across the whole run: the driver's own
/// sends plus every worker's counters (piggybacked on fence acks, so direct
/// worker↔worker bytes the driver never sees are still counted).
struct DataPlaneStats {
  uint64_t bytes_hub = 0;    ///< full-block outcome payload bytes
  uint64_t bytes_relay = 0;  ///< delta patch bytes moved via the driver
  uint64_t bytes_p2p = 0;    ///< delta patch bytes on direct worker links
  uint64_t transfers = 0;    ///< kRegionData messages sent

  uint64_t bytes_delta() const { return bytes_relay + bytes_p2p; }
  uint64_t bytes_total() const { return bytes_hub + bytes_relay + bytes_p2p; }
};

/// Multi-process runtime: dynamic control replication over real OS
/// processes. The driver (rank 0) broadcasts every launch as its O(1)
/// serialized descriptor; every rank issues the identical stream into a
/// local Runtime whose point_owned hook carves out the rank's block of each
/// launch domain. Non-owned points become external graph nodes completed by
/// kTaskDone messages, so dependences, retries, poison propagation and
/// fault injection all run with full fidelity on the owning process and
/// replicate as data everywhere else.
///
/// Setup (forest construction, register_task) must happen before the first
/// launch: the first launch freezes setup, forks/handshakes the workers and
/// ships the bootstrap state.
class DistributedRuntime : public RuntimeApi {
 public:
  explicit DistributedRuntime(DistConfig config = {});
  ~DistributedRuntime() override;

  RegionForest& forest() override { return *forest_; }
  TaskFnId register_task(std::string name, TaskFn fn) override;
  LaunchResult execute(const TaskLauncher& launcher) override;
  LaunchResult execute_index(const IndexLauncher& launcher) override;
  void wait_all() override;
  FaultReport fault_report() const override;
  RuntimeStats stats() const override;
  obs::MetricsRegistry& metrics() override;
  /// Recall before a direct read: in delta mode most root data lives only on
  /// the rank that produced it — plan transfers bringing every stale span
  /// back to rank 0, then fence.
  void sync_for_read() override;
  void fill_bytes_region(RegionId r, FieldId f, const void* pattern,
                         std::size_t size) override;

  uint32_t ranks() const { return config_.ranks; }
  bool started() const { return started_; }
  /// Effective data-plane mode (delta can be auto-disabled; see DistConfig).
  bool delta_transfers() const { return delta_; }

  /// Fence, then return run-wide data-plane byte counters (bench/CI gate).
  DataPlaneStats data_plane_stats();

  /// Fence, then aggregate every rank's metrics into one snapshot: each
  /// series gains a `rank` label and per-family roll-ups appear under
  /// rank="all" (obs::aggregate_cluster). Worker snapshots ride the fence
  /// acks, so the view is current as of this call's fence.
  obs::MetricsSnapshot cluster_metrics();
  /// cluster_metrics() rendered as one Prometheus exposition / JSON doc.
  std::string cluster_prometheus();
  std::string cluster_metrics_json();

  /// Fence, pull every rank's spans + recorder tail (kTelemetryReq), and
  /// assemble the clock-aligned cluster trace. Rank 0 is the driver's own
  /// profiler; worker clocks are aligned with the heartbeat-probe offset
  /// estimates. Requires profiling enabled to carry spans.
  obs::ClusterTrace collect_cluster_trace();
  /// collect_cluster_trace() written as a merged Chrome trace file.
  void write_merged_trace(const std::string& path);

  /// Merged stall dump over the driver's own waits-for graph and the latest
  /// stall push from each worker's watchdog; names the blocking rank when
  /// the evidence is conclusive (obs::merged_stall_dump). Also emitted to
  /// stderr automatically when the driver's own watchdog declares a stall.
  std::string distributed_stall_dump();

  /// Clock-offset estimate for a worker rank (heartbeat probes; invalid
  /// until the first pong or for rank 0 / unknown ranks).
  net::ClockEstimate clock_estimate(uint32_t rank) const {
    return clocks_ != nullptr ? clocks_->estimate(rank) : net::ClockEstimate{};
  }

  /// The driver's local runtime (tests: counters, flight recorder).
  /// Valid only after the first launch.
  Runtime& local() { return *local_; }

 private:
  void ensure_started();
  /// Fork (or connect, in exec mode) the workers; returns the driver-side
  /// socket of each, in worker-index order. Fork mode must run before any
  /// thread exists in this process.
  std::vector<net::Socket> start_fork_workers();
  std::vector<net::Socket> start_exec_workers();
  void on_worker_frame(std::size_t worker, net::Frame& frame);
  void on_worker_close(std::size_t worker, const std::string& error);
  void broadcast(Msg type, const std::vector<std::byte>& payload);
  void send_task_done(const TaskDone& done);
  /// Fence all ranks; returns false (instead of throwing) on peer loss or
  /// report divergence when `nothrow` — the destructor path.
  bool fence(bool nothrow);
  void shutdown();
  std::vector<std::byte> setup_bytes() const;
  std::string fault_plan_spec() const;
  std::size_t closed_count_locked() const;

  // --- delta data plane (driver side) ---
  /// Update the coherence map for one point task about to be issued: plan
  /// the transfers its reads need (broadcasting kRoute + issuing the local
  /// transfer task for each) and record its writes.
  void plan_point_task(const Domain& domain, const Point& p,
                       const std::vector<RegionArg>& args);
  void plan_index_launch(const IndexLauncher& launcher);
  void issue_transfer(const Transfer& t, uint32_t dest);
  /// on_task_success arm for the driver-owned transfer task: extract the
  /// rect, ship it to the destination, announce a slim outcome.
  void send_xfer_data(uint64_t seq, uint64_t launch, TaskContext& ctx);
  /// Record the receiving half of a remote span pair on the local profiler.
  void record_apply_span(uint32_t name, uint64_t seq,
                         const obs::TraceContext& ctx, uint64_t start_ns);
  /// Fold current totals into the idxl_net_* metric series (fence_mu_ held).
  void publish_net_metrics_locked();

  DistConfig config_;
  std::shared_ptr<RegionForest> forest_;
  std::vector<std::pair<std::string, TaskFn>> tasks_;
  TaskFnId fill_task_ = UINT32_MAX;
  TaskFnId xfer_task_ = UINT32_MAX;

  bool started_ = false;
  bool delta_ = false;  ///< effective mode, fixed at ensure_started()
  std::string trace_path_;  ///< effective (config + IDXL_TRACE), see DistConfig
  std::unique_ptr<Runtime> local_;
  std::vector<std::unique_ptr<net::Connection>> conns_;  // worker rank r -> [r-1]
  std::unique_ptr<net::PeerMonitor> monitor_;
  std::unique_ptr<net::ClockTable> clocks_;  ///< per-worker offset estimates
  uint32_t name_xfer_apply_ = 0;  ///< interned remote-parent span names
  uint32_t name_done_apply_ = 0;
  std::vector<pid_t> children_;

  /// Driver-only coherence map; every plan_* call runs on the issuing
  /// thread, so the map needs no lock.
  std::unique_ptr<VersionMap> vmap_;
  /// The driver's own data-plane sends (task workers + recv threads write).
  struct NetCells {
    std::atomic<uint64_t> bytes_hub{0};
    std::atomic<uint64_t> bytes_relay{0};
    std::atomic<uint64_t> bytes_p2p{0};
    std::atomic<uint64_t> transfers{0};
  } net_;
  obs::Counter m_bytes_hub_, m_bytes_relay_, m_bytes_p2p_, m_transfers_;
  obs::Histogram m_xfer_size_, m_xfer_latency_;

  /// Driver-bound transfer payloads (kRegionData, dest 0) parked until the
  /// sender's slim kTaskDone completes the node (see on_worker_frame).
  std::mutex xdata_mu_;
  std::unordered_map<uint64_t, std::vector<RegionPatch>> driver_patches_;

  std::mutex fence_mu_;
  std::condition_variable fence_cv_;
  uint64_t next_fence_ = 0;
  /// fence id -> acks received (worker index -> ack)
  std::map<uint64_t, std::map<std::size_t, FenceAck>> fence_acks_;
  /// Latest cumulative per-worker counters (fence_mu_).
  std::vector<DataPlaneCounters> worker_net_;
  /// Latest metrics snapshot per worker index, from fence acks (fence_mu_).
  std::vector<obs::MetricsSnapshot> worker_metrics_;
  /// Shutdown-pull telemetry by rank, answering kTelemetryReq (fence_mu_).
  std::map<uint32_t, Telemetry> telemetry_;
  /// Latest stall push per rank from worker watchdogs (fence_mu_).
  std::map<uint32_t, Telemetry> stall_push_;
  /// Totals already folded into the metric counters (fence_mu_).
  DataPlaneStats metrics_emitted_;
  std::vector<std::string> peer_errors_;  // non-empty entry = worker trouble
  std::vector<bool> worker_closed_;       // recv loop ended (clean or not)
  std::size_t hello_acks_ = 0;
  bool tearing_down_ = false;
};

}  // namespace idxl::dist
