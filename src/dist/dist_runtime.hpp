#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/connection.hpp"
#include "dist/protocol.hpp"
#include "runtime/runtime.hpp"

namespace idxl::dist {

/// Deterministic point → owning-rank map shared by every process of a run:
/// contiguous, balanced blocks of the row-major point enumeration. Domains
/// with at most one point (single launches, fills) live on rank 0.
inline uint32_t owner_of(const Domain& domain, const Point& p, uint32_t nranks) {
  const int64_t vol = domain.volume();
  if (vol <= 1 || nranks <= 1) return 0;
  const int64_t idx = domain.linear_index(p);
  return static_cast<uint32_t>(idx * static_cast<int64_t>(nranks) / vol);
}

struct DistConfig {
  /// Total process count, the driver included. 1 = degenerate local run.
  uint32_t ranks = 2;
  /// Per-process local runtime configuration (thread-pool width, watchdog,
  /// fault plan ...). The distributed hooks are installed on top.
  RuntimeConfig runtime;
  /// Exec mode: `host:port` of a pre-started `idxl-noded --listen` per
  /// worker rank (ranks - 1 entries). Empty = fork mode: workers are forked
  /// from this process before any thread exists and inherit forest and task
  /// registrations by memory.
  std::vector<std::string> workers;
  uint32_t heartbeat_period_ms = 1000;
  /// A peer silent past this window raises idxl_net_peer_stalls_total.
  uint32_t peer_stall_window_ms = 10000;
  /// Cross-check every rank's FaultReport at each fence; a divergence (a
  /// replication bug) throws RuntimeError.
  bool verify_reports = true;
};

/// Multi-process runtime: dynamic control replication over real OS
/// processes. The driver (rank 0) broadcasts every launch as its O(1)
/// serialized descriptor; every rank issues the identical stream into a
/// local Runtime whose point_owned hook carves out the rank's block of each
/// launch domain. Non-owned points become external graph nodes completed by
/// kTaskDone messages, so dependences, retries, poison propagation and
/// fault injection all run with full fidelity on the owning process and
/// replicate as data everywhere else.
///
/// Setup (forest construction, register_task) must happen before the first
/// launch: the first launch freezes setup, forks/handshakes the workers and
/// ships the bootstrap state.
class DistributedRuntime : public RuntimeApi {
 public:
  explicit DistributedRuntime(DistConfig config = {});
  ~DistributedRuntime() override;

  RegionForest& forest() override { return *forest_; }
  TaskFnId register_task(std::string name, TaskFn fn) override;
  LaunchResult execute(const TaskLauncher& launcher) override;
  LaunchResult execute_index(const IndexLauncher& launcher) override;
  void wait_all() override;
  FaultReport fault_report() const override;
  RuntimeStats stats() const override;
  obs::MetricsRegistry& metrics() override;
  void sync_for_read() override { wait_all(); }
  void fill_bytes_region(RegionId r, FieldId f, const void* pattern,
                         std::size_t size) override;

  uint32_t ranks() const { return config_.ranks; }
  bool started() const { return started_; }

  /// The driver's local runtime (tests: counters, flight recorder).
  /// Valid only after the first launch.
  Runtime& local() { return *local_; }

 private:
  void ensure_started();
  /// Fork (or connect, in exec mode) the workers; returns the driver-side
  /// socket of each, in worker-index order. Fork mode must run before any
  /// thread exists in this process.
  std::vector<net::Socket> start_fork_workers();
  std::vector<net::Socket> start_exec_workers();
  void on_worker_frame(std::size_t worker, net::Frame& frame);
  void on_worker_close(std::size_t worker, const std::string& error);
  void broadcast(Msg type, const std::vector<std::byte>& payload);
  void send_task_done(const TaskDone& done);
  /// Fence all ranks; returns false (instead of throwing) on peer loss or
  /// report divergence when `nothrow` — the destructor path.
  bool fence(bool nothrow);
  void shutdown();
  std::vector<std::byte> setup_bytes() const;
  std::string fault_plan_spec() const;
  std::size_t closed_count_locked() const;

  DistConfig config_;
  std::shared_ptr<RegionForest> forest_;
  std::vector<std::pair<std::string, TaskFn>> tasks_;
  TaskFnId fill_task_ = UINT32_MAX;

  bool started_ = false;
  std::unique_ptr<Runtime> local_;
  std::vector<std::unique_ptr<net::Connection>> conns_;  // worker rank r -> [r-1]
  std::unique_ptr<net::PeerMonitor> monitor_;
  std::vector<pid_t> children_;

  std::mutex fence_mu_;
  std::condition_variable fence_cv_;
  uint64_t next_fence_ = 0;
  /// fence id -> reports received (worker index -> report)
  std::map<uint64_t, std::map<std::size_t, FaultReport>> fence_acks_;
  std::vector<std::string> peer_errors_;  // non-empty entry = worker trouble
  std::vector<bool> worker_closed_;       // recv loop ended (clean or not)
  std::size_t hello_acks_ = 0;
  bool tearing_down_ = false;
};

}  // namespace idxl::dist
