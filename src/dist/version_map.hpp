#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "region/point.hpp"
#include "region/region_forest.hpp"

namespace idxl::dist {

/// One planned delta transfer: rank `src` holds version `version` of
/// `rect` × `field` of some root region and must push it to the reading
/// rank. `producer` names the subregion whose write created the entry — the
/// region argument the transfer task attaches, so the dependence tracker
/// orders it after the producing task and before the consuming one.
struct Transfer {
  uint32_t src = 0;
  uint64_t version = 0;
  RegionId producer;
  FieldId field = 0;
  Rect rect;
};

/// Driver-side coherence map: for every (root region, field) it remembers
/// which rank produced the current version of each sub-rectangle and which
/// ranks already hold a current copy. `plan_read` then yields exactly the
/// stale sub-rectangles a consumer needs — halo strips for stencil-style
/// footprints — and nothing when the reader's copy is already current.
///
/// Space not covered by any entry is version 0: the bootstrap state every
/// rank received at setup, current everywhere by construction. Entries are
/// kept disjoint via rectangle subtraction on overlap, so the map is a
/// partition of the written footprint, not a log.
class VersionMap {
 public:
  explicit VersionMap(uint32_t nranks);

  /// Record that `owner` is about to produce a new version of `rect`; only
  /// `owner` will hold it (delta mode ships nothing on write).
  void note_write(RegionId root, FieldId field, const Rect& rect,
                  uint32_t owner, RegionId producer);

  /// Record a write whose bytes are broadcast to every rank (the full-block
  /// fallback for sparse write footprints and the star-hub baseline).
  void note_write_everywhere(RegionId root, FieldId field, const Rect& rect,
                             uint32_t owner, RegionId producer);

  /// Plan the transfers `dest` needs before reading `rect`, appending to
  /// `out`, and mark the shipped spans current at `dest`. Never yields a
  /// transfer with src == dest (an owner is always current).
  void plan_read(RegionId root, FieldId field, const Rect& rect,
                 uint32_t dest, std::vector<Transfer>& out);

  /// Entries currently tracked for (root, field) — tests only.
  std::size_t entry_count(RegionId root, FieldId field) const;

 private:
  struct Entry {
    Rect rect;
    uint64_t version = 0;
    uint32_t owner = 0;
    uint64_t current = 0;  ///< bitmask of ranks holding this version
    RegionId producer;
  };

  void note(RegionId root, FieldId field, const Rect& rect, uint32_t owner,
            RegionId producer, uint64_t current);

  uint32_t nranks_;
  uint64_t all_mask_;
  uint64_t next_version_ = 0;
  std::map<std::pair<uint32_t, FieldId>, std::vector<Entry>> fields_;
};

}  // namespace idxl::dist
