#pragma once

#include "runtime/physical.hpp"

namespace idxl::dist::smoke {

/// Scalar arguments of the smoke-test stencil tasks (shipped by value with
/// every launch, so the bodies are capture-free and can be registered in
/// idxl-noded's named-task registry).
struct StencilArgs {
  FieldId fin = 0;
  FieldId fout = 1;
  int64_t radius = 1;
  int64_t nx = 0;
  int64_t ny = 0;
};

/// PRK-style star stencil: region 0 = halo view of `fin` (read), region 1 =
/// disjoint block of `fout` (read-write). Registered as "smoke_stencil".
void stencil_body(TaskContext& ctx);

/// PRK increment: region 0 = disjoint block of `fin` (read-write).
/// Registered as "smoke_increment".
void increment_body(TaskContext& ctx);

}  // namespace idxl::dist::smoke
