#include "dist/version_map.hpp"

#include "support/error.hpp"

namespace idxl::dist {

namespace {

/// Append the up-to-2·dim rectangles of `a` \ `b` (slab decomposition).
/// Precondition: a and b overlap.
void subtract(const Rect& a, const Rect& b, std::vector<Rect>& out) {
  Rect rem = a;
  for (int d = 0; d < a.dim(); ++d) {
    if (rem.lo[d] < b.lo[d]) {
      Rect piece = rem;
      piece.hi[d] = b.lo[d] - 1;
      out.push_back(piece);
      rem.lo[d] = b.lo[d];
    }
    if (rem.hi[d] > b.hi[d]) {
      Rect piece = rem;
      piece.lo[d] = b.hi[d] + 1;
      out.push_back(piece);
      rem.hi[d] = b.hi[d];
    }
  }
}

}  // namespace

VersionMap::VersionMap(uint32_t nranks) : nranks_(nranks) {
  IDXL_REQUIRE(nranks >= 1 && nranks <= 64,
               "delta transfers track rank currency in a 64-bit mask");
  all_mask_ = nranks == 64 ? ~uint64_t{0} : (uint64_t{1} << nranks) - 1;
}

void VersionMap::note(RegionId root, FieldId field, const Rect& rect,
                      uint32_t owner, RegionId producer, uint64_t current) {
  if (rect.empty()) return;
  std::vector<Entry>& entries = fields_[{root.id, field}];
  std::vector<Entry> next;
  next.reserve(entries.size() + 1);
  std::vector<Rect> pieces;
  for (Entry& e : entries) {
    if (!e.rect.overlaps(rect)) {
      next.push_back(std::move(e));
      continue;
    }
    pieces.clear();
    subtract(e.rect, rect, pieces);
    for (const Rect& p : pieces) {
      Entry keep = e;
      keep.rect = p;
      next.push_back(std::move(keep));
    }
  }
  Entry fresh;
  fresh.rect = rect;
  fresh.version = ++next_version_;
  fresh.owner = owner;
  fresh.current = current;
  fresh.producer = producer;
  next.push_back(std::move(fresh));
  entries = std::move(next);
}

void VersionMap::note_write(RegionId root, FieldId field, const Rect& rect,
                            uint32_t owner, RegionId producer) {
  note(root, field, rect, owner, producer, uint64_t{1} << owner);
}

void VersionMap::note_write_everywhere(RegionId root, FieldId field,
                                       const Rect& rect, uint32_t owner,
                                       RegionId producer) {
  note(root, field, rect, owner, producer, all_mask_);
}

void VersionMap::plan_read(RegionId root, FieldId field, const Rect& rect,
                           uint32_t dest, std::vector<Transfer>& out) {
  if (rect.empty()) return;
  const auto it = fields_.find({root.id, field});
  if (it == fields_.end()) return;  // version 0 everywhere: current
  const uint64_t bit = uint64_t{1} << dest;
  std::vector<Entry>& entries = it->second;
  std::vector<Entry> next;
  next.reserve(entries.size());
  std::vector<Rect> pieces;
  for (Entry& e : entries) {
    const Rect ov = e.rect.intersection(rect);
    if ((e.current & bit) != 0 || ov.empty()) {
      next.push_back(std::move(e));
      continue;
    }
    IDXL_ASSERT(e.owner != dest);
    Transfer t;
    t.src = e.owner;
    t.version = e.version;
    t.producer = e.producer;
    t.field = field;
    t.rect = ov;
    out.push_back(std::move(t));
    // Split the entry: only the shipped overlap becomes current at dest.
    pieces.clear();
    subtract(e.rect, ov, pieces);
    for (const Rect& p : pieces) {
      Entry stale = e;
      stale.rect = p;
      next.push_back(std::move(stale));
    }
    e.rect = ov;
    e.current |= bit;
    next.push_back(std::move(e));
  }
  entries = std::move(next);
}

std::size_t VersionMap::entry_count(RegionId root, FieldId field) const {
  const auto it = fields_.find({root.id, field});
  return it == fields_.end() ? 0 : it->second.size();
}

}  // namespace idxl::dist
