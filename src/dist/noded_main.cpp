// idxl-noded — the distributed runtime's worker daemon (exec mode).
//
// Listens on a TCP port or Unix socket, accepts one driver connection at a
// time, and serves it: the driver ships rank assignment, the region-forest
// journal and the task names (resolved against bodies compiled into this
// binary via IDXL_DIST_REGISTER_TASK — see smoke_tasks.cpp), then replays
// its launch stream here. See docs/DISTRIBUTED.md.
//
// Usage:
//   idxl-noded --listen <port>        # TCP on 127.0.0.1:<port> (0 = ephemeral)
//   idxl-noded --listen-unix <path>   # AF_UNIX at <path>
//   idxl-noded ... --once             # exit after the first session

#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "dist/worker.hpp"
#include "net/socket.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--listen <port> | --listen-unix <path>) [--once]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int port = -1;
  std::string unix_path;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--listen" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--listen-unix" && i + 1 < argc) {
      unix_path = argv[++i];
    } else if (arg == "--once") {
      once = true;
    } else {
      return usage(argv[0]);
    }
  }
  if ((port < 0) == unix_path.empty()) return usage(argv[0]);

  try {
    idxl::net::Socket listener =
        unix_path.empty()
            ? idxl::net::Socket::listen_tcp(static_cast<uint16_t>(port))
            : idxl::net::Socket::listen_unix(unix_path);
    if (unix_path.empty()) {
      // Announce the bound port (ephemeral-port runs scrape this line).
      std::printf("idxl-noded listening on 127.0.0.1:%u\n",
                  static_cast<unsigned>(listener.bound_port()));
      std::fflush(stdout);
    } else {
      std::printf("idxl-noded listening on %s\n", unix_path.c_str());
      std::fflush(stdout);
    }
    for (;;) {
      idxl::net::Socket conn = listener.accept();
      try {
        idxl::dist::WorkerSession::serve(std::move(conn));
        std::printf("idxl-noded: session complete\n");
        std::fflush(stdout);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "idxl-noded: session failed: %s\n", e.what());
        if (once) return 1;
      }
      if (once) return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "idxl-noded: %s\n", e.what());
    return 1;
  }
}
