#pragma once

#include "runtime/physical.hpp"

namespace idxl::dist {

/// Scalar arguments of the distributed fill task ("idxl_dist_fill"). The
/// body lives in task_registry.cpp — the one translation unit every binary
/// that touches the registry links — so its static-init registration cannot
/// be dropped by archive linking. Fork-mode children inherit it through the
/// driver's task table; exec-mode daemons resolve it by name like any user
/// task.
struct DistFillArgs {
  FieldId field = 0;
  std::size_t size = 0;
  unsigned char pattern[16] = {};
};

}  // namespace idxl::dist
