#include "region/bvh.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace idxl {

namespace {

Rect merge(const Rect& a, const Rect& b) {
  IDXL_ASSERT(a.dim() == b.dim());
  Rect r = a;
  for (int d = 0; d < a.dim(); ++d) {
    r.lo[d] = std::min(a.lo[d], b.lo[d]);
    r.hi[d] = std::max(a.hi[d], b.hi[d]);
  }
  return r;
}

}  // namespace

void RectBVH::build(std::vector<std::pair<Rect, uint32_t>> items) {
  nodes_.clear();
  items_ = std::move(items);
  item_count_ = items_.size();
  if (items_.empty()) return;
  nodes_.reserve(2 * items_.size());
  build_node(0, static_cast<uint32_t>(items_.size()));
}

uint32_t RectBVH::build_node(uint32_t first, uint32_t count) {
  const auto index = static_cast<uint32_t>(nodes_.size());
  nodes_.emplace_back();

  Rect bounds = items_[first].first;
  for (uint32_t i = first + 1; i < first + count; ++i)
    bounds = merge(bounds, items_[i].first);
  nodes_[index].bounds = bounds;

  if (count <= kLeafSize) {
    nodes_[index].first = first;
    nodes_[index].count = count;
    return index;
  }

  // Median split on the longest axis of the current bounds (by rect center).
  int axis = 0;
  int64_t best = -1;
  for (int d = 0; d < bounds.dim(); ++d) {
    const int64_t extent = bounds.hi[d] - bounds.lo[d];
    if (extent > best) {
      best = extent;
      axis = d;
    }
  }
  const auto begin = items_.begin() + first;
  const auto mid = begin + count / 2;
  const auto end = begin + count;
  std::nth_element(begin, mid, end, [axis](const auto& a, const auto& b) {
    return a.first.lo[axis] + a.first.hi[axis] < b.first.lo[axis] + b.first.hi[axis];
  });

  const uint32_t left = build_node(first, count / 2);
  const uint32_t right = build_node(first + count / 2, count - count / 2);
  nodes_[index].left = left;
  nodes_[index].right = right;
  nodes_[index].count = 0;
  return index;
}

}  // namespace idxl
