#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "region/domain.hpp"

namespace idxl {

/// Strongly-typed handles. All region-tree objects are owned by a
/// RegionForest and referred to by value handles, mirroring Legion's API
/// (handles are cheap to copy into task descriptors and launchers).
struct IndexSpaceId {
  uint32_t id = UINT32_MAX;
  bool valid() const { return id != UINT32_MAX; }
  friend bool operator==(IndexSpaceId a, IndexSpaceId b) { return a.id == b.id; }
};
struct FieldSpaceId {
  uint32_t id = UINT32_MAX;
  bool valid() const { return id != UINT32_MAX; }
  friend bool operator==(FieldSpaceId a, FieldSpaceId b) { return a.id == b.id; }
};
struct PartitionId {
  uint32_t id = UINT32_MAX;
  bool valid() const { return id != UINT32_MAX; }
  friend bool operator==(PartitionId a, PartitionId b) { return a.id == b.id; }
  friend bool operator!=(PartitionId a, PartitionId b) { return a.id != b.id; }
};
struct RegionId {
  uint32_t id = UINT32_MAX;
  bool valid() const { return id != UINT32_MAX; }
  friend bool operator==(RegionId a, RegionId b) { return a.id == b.id; }
  friend bool operator!=(RegionId a, RegionId b) { return a.id != b.id; }
};
using FieldId = uint32_t;

/// How a partition's disjointness is established at creation.
enum class Disjointness {
  kDisjoint,  ///< creator guarantees subspaces don't overlap (checked in debug)
  kAliased,   ///< subspaces may overlap (e.g. halo partitions)
  kCompute,   ///< forest verifies pairwise and records the result
};

/// A collection in the paper's terminology: an index space paired with a
/// field space, plus (for root regions) backing storage. Subregions are
/// views onto the root's storage, exactly the "views onto the same
/// underlying data" of §2.
struct RegionInfo {
  RegionId handle;
  RegionId root;        // == handle for root regions
  uint32_t tree_id = 0; // regions in different trees never interfere
  IndexSpaceId ispace;
  FieldSpaceId fspace;
  PartitionId through;  // partition this subregion was taken from (invalid for roots)
  Point color;          // color within `through`
};

struct FieldInfo {
  FieldId id = 0;
  std::size_t size = 0;
  std::string name;
};

/// One recorded forest-construction call. The journal of these ops is the
/// portable description of the forest: replaying it into an empty forest
/// yields identical handles (ids are assigned sequentially), which is how a
/// remote worker process reconstructs the driver's region tree at startup.
struct SetupOp {
  enum class Kind : uint8_t {
    kIndexSpace,   ///< create_index_space(domain)
    kFieldSpace,   ///< create_field_space()
    kField,        ///< allocate_field(a, b, name)
    kPartition,    ///< create_partition(a, color_space, subspaces, disjointness)
    kRegion,       ///< create_region(a, b)
    kSubregion,    ///< subregion(a, b, color)
  };
  Kind kind = Kind::kIndexSpace;
  Domain domain;                  // kIndexSpace
  uint32_t a = 0;                 // first id operand (see Kind comments)
  uint32_t b = 0;                 // second id operand / field size
  std::string name;               // kField
  Rect color_space;               // kPartition
  std::vector<Domain> subspaces;  // kPartition
  uint8_t disjointness = 0;       // kPartition
  Point color;                    // kSubregion
};

/// Owner of the region "forest": index spaces, field spaces, partitions,
/// logical regions and the physical storage of root regions. Thread-safe
/// for concurrent *reads* after setup; creation calls must be serialized
/// (the runtime's issue loop is single-threaded, as in Legion's
/// application-visible API).
class RegionForest {
 public:
  RegionForest() = default;
  RegionForest(const RegionForest&) = delete;
  RegionForest& operator=(const RegionForest&) = delete;

  // --- index spaces ---
  IndexSpaceId create_index_space(Domain domain);
  const Domain& domain(IndexSpaceId is) const;

  // --- field spaces ---
  FieldSpaceId create_field_space();
  FieldId allocate_field(FieldSpaceId fs, std::size_t field_size, std::string name);
  const FieldInfo& field(FieldSpaceId fs, FieldId f) const;
  const std::vector<FieldInfo>& fields(FieldSpaceId fs) const;

  // --- partitions ---
  /// Create a partition of `parent` with a dense `color_space`; `subspaces`
  /// holds one domain per color in row-major color order.
  PartitionId create_partition(IndexSpaceId parent, const Rect& color_space,
                               std::vector<Domain> subspaces, Disjointness d);

  IndexSpaceId subspace(PartitionId p, const Point& color) const;
  const Rect& color_space(PartitionId p) const;
  IndexSpaceId partition_parent(PartitionId p) const;
  bool is_disjoint(PartitionId p) const;

  /// Brute-force pairwise disjointness verification; the "procedure for
  /// determining the disjointness of partitions" the paper assumes (§2).
  bool verify_disjoint(PartitionId p) const;

  // --- logical regions ---
  /// Create a root region and allocate storage for every field.
  RegionId create_region(IndexSpaceId is, FieldSpaceId fs);
  /// Subregion view of `parent` through partition `p` at `color`. Cached:
  /// repeated calls return the same handle.
  RegionId subregion(RegionId parent, PartitionId p, const Point& color);
  /// Every subregion of `parent` through `p`, one per color in row-major
  /// color order. Materializes (and caches) the whole table on first use,
  /// so issuing an index launch costs one lookup per color instead of one
  /// hash probe per point. The returned reference stays valid for the
  /// forest's lifetime.
  const std::vector<RegionId>& subregion_table(RegionId parent, PartitionId p);
  const RegionInfo& region(RegionId r) const;
  const Domain& region_domain(RegionId r) const { return domain(region(r).ispace); }

  /// Do two regions possibly name common data? (Same tree and overlapping
  /// index-space domains.)
  bool regions_interfere(RegionId a, RegionId b) const;

  /// Whole-partition independence (§5, logical analysis): launches on
  /// logical partition (ra, p) and (rb, q) can never touch common data when
  /// the regions live in different trees, or when their parent index-space
  /// domains are disjoint.
  bool partitions_independent(RegionId ra, PartitionId p, RegionId rb,
                              PartitionId q) const;

  // --- physical storage ---
  /// Raw bytes of `field` of the *root* of region `r`, laid out row-major
  /// over the root index space's bounding rect.
  std::byte* field_data(RegionId r, FieldId f);
  const std::byte* field_data(RegionId r, FieldId f) const;
  /// Bounding rect used for storage linearization of r's tree root.
  const Rect& storage_bounds(RegionId r) const;

  std::size_t index_space_count() const { return index_spaces_.size(); }
  std::size_t field_space_count() const { return field_spaces_.size(); }
  std::size_t region_count() const { return regions_.size(); }
  std::size_t partition_count() const { return partitions_.size(); }

  // --- setup journal ---
  /// Every construction call recorded in order (subspace index spaces
  /// created inside create_partition are folded into its kPartition op).
  const std::vector<SetupOp>& setup_journal() const { return journal_; }
  /// Replay a journal into this (empty) forest, reproducing the recording
  /// forest's handles exactly.
  void replay_setup(const std::vector<SetupOp>& ops);

 private:
  struct PartitionNode {
    IndexSpaceId parent;
    Rect color_space;
    std::vector<IndexSpaceId> subspaces;  // row-major by color
    bool disjoint = false;
    uint32_t tree_id = 0;  // tree of the parent index space (0 = unattached)
  };

  struct RootStorage {
    Rect bounds;  // bounding rect of the root index space
    std::unordered_map<FieldId, std::vector<std::byte>> data;
  };

  // Deques, not vectors: PhysicalRegion and the dependence trackers hold
  // pointers/references to Domain and RegionInfo elements across later
  // create_* calls (including subregion materialization on the issue path),
  // so element addresses must survive growth.
  std::deque<Domain> index_spaces_;
  std::vector<std::vector<FieldInfo>> field_spaces_;
  std::deque<PartitionNode> partitions_;
  std::deque<RegionInfo> regions_;
  std::vector<std::unique_ptr<RootStorage>> storage_;  // by root region id
  std::unordered_map<uint64_t, RegionId> subregion_cache_;
  std::unordered_map<uint64_t, std::vector<RegionId>> subregion_tables_;
  uint32_t next_tree_id_ = 1;
  std::vector<SetupOp> journal_;
  bool journal_suspended_ = false;  // while create_partition makes subspaces
};

}  // namespace idxl
