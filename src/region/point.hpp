#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <iterator>
#include <ostream>
#include <string>

#include "support/error.hpp"

namespace idxl {

/// Maximum dimensionality of index spaces and launch domains. The paper's
/// workloads need up to 3 (DOM sweeps launch over 3-D diagonal slices); 4
/// leaves headroom for e.g. ensemble dimensions.
inline constexpr int kMaxDim = 4;

/// A point in an N-dimensional integer index space. Dimensionality is
/// dynamic (1..kMaxDim) because launch domains and partition color spaces of
/// different arity flow through the same runtime code paths.
struct Point {
  int dim = 1;
  std::array<int64_t, kMaxDim> c{};  // coordinates; entries >= dim are 0

  Point() = default;
  Point(int d, std::array<int64_t, kMaxDim> coords) : dim(d), c(coords) {
    IDXL_ASSERT(d >= 1 && d <= kMaxDim);
  }

  static Point p1(int64_t x) { return Point(1, {x, 0, 0, 0}); }
  static Point p2(int64_t x, int64_t y) { return Point(2, {x, y, 0, 0}); }
  static Point p3(int64_t x, int64_t y, int64_t z) { return Point(3, {x, y, z, 0}); }
  static Point p4(int64_t x, int64_t y, int64_t z, int64_t w) {
    return Point(4, {x, y, z, w});
  }

  /// All-`v` point of dimension `d`.
  static Point filled(int d, int64_t v) {
    Point p;
    p.dim = d;
    for (int i = 0; i < d; ++i) p.c[i] = v;
    return p;
  }

  int64_t operator[](int i) const {
    IDXL_ASSERT(i >= 0 && i < dim);
    return c[static_cast<std::size_t>(i)];
  }
  int64_t& operator[](int i) {
    IDXL_ASSERT(i >= 0 && i < dim);
    return c[static_cast<std::size_t>(i)];
  }

  friend bool operator==(const Point& a, const Point& b) {
    if (a.dim != b.dim) return false;
    for (int i = 0; i < a.dim; ++i)
      if (a.c[static_cast<std::size_t>(i)] != b.c[static_cast<std::size_t>(i)]) return false;
    return true;
  }
  friend bool operator!=(const Point& a, const Point& b) { return !(a == b); }

  /// Lexicographic order (points of smaller dim sort first). Used by sparse
  /// domains to keep point lists canonical.
  friend bool operator<(const Point& a, const Point& b) {
    if (a.dim != b.dim) return a.dim < b.dim;
    for (int i = 0; i < a.dim; ++i) {
      const auto ai = a.c[static_cast<std::size_t>(i)];
      const auto bi = b.c[static_cast<std::size_t>(i)];
      if (ai != bi) return ai < bi;
    }
    return false;
  }

  friend Point operator+(const Point& a, const Point& b) {
    IDXL_ASSERT(a.dim == b.dim);
    Point r = a;
    for (int i = 0; i < a.dim; ++i) r.c[static_cast<std::size_t>(i)] += b.c[static_cast<std::size_t>(i)];
    return r;
  }
  friend Point operator-(const Point& a, const Point& b) {
    IDXL_ASSERT(a.dim == b.dim);
    Point r = a;
    for (int i = 0; i < a.dim; ++i) r.c[static_cast<std::size_t>(i)] -= b.c[static_cast<std::size_t>(i)];
    return r;
  }

  std::string to_string() const {
    std::string s = "(";
    for (int i = 0; i < dim; ++i) {
      if (i) s += ",";
      s += std::to_string(c[static_cast<std::size_t>(i)]);
    }
    return s + ")";
  }

  friend std::ostream& operator<<(std::ostream& os, const Point& p) {
    return os << p.to_string();
  }
};

struct PointHash {
  std::size_t operator()(const Point& p) const {
    // FNV-1a over dim + active coordinates.
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(static_cast<uint64_t>(p.dim));
    for (int i = 0; i < p.dim; ++i) mix(static_cast<uint64_t>(p.c[static_cast<std::size_t>(i)]));
    return static_cast<std::size_t>(h);
  }
};

/// A dense axis-aligned rectangle [lo, hi], inclusive on both ends (the
/// Legion/Realm convention). An empty rect has hi[i] < lo[i] in some
/// dimension.
struct Rect {
  Point lo, hi;

  Rect() : lo(Point::p1(0)), hi(Point::p1(-1)) {}
  Rect(Point l, Point h) : lo(l), hi(h) { IDXL_ASSERT(l.dim == h.dim); }

  /// 1-D rect covering [0, n).
  static Rect line(int64_t n) { return Rect(Point::p1(0), Point::p1(n - 1)); }
  static Rect box2(int64_t nx, int64_t ny) {
    return Rect(Point::p2(0, 0), Point::p2(nx - 1, ny - 1));
  }
  static Rect box3(int64_t nx, int64_t ny, int64_t nz) {
    return Rect(Point::p3(0, 0, 0), Point::p3(nx - 1, ny - 1, nz - 1));
  }

  int dim() const { return lo.dim; }

  bool empty() const {
    for (int i = 0; i < dim(); ++i)
      if (hi[i] < lo[i]) return true;
    return false;
  }

  int64_t volume() const {
    if (empty()) return 0;
    int64_t v = 1;
    for (int i = 0; i < dim(); ++i) v *= hi[i] - lo[i] + 1;
    return v;
  }

  bool contains(const Point& p) const {
    if (p.dim != dim()) return false;
    for (int i = 0; i < dim(); ++i)
      if (p[i] < lo[i] || p[i] > hi[i]) return false;
    return true;
  }

  bool contains(const Rect& r) const {
    if (r.empty()) return true;
    return contains(r.lo) && contains(r.hi);
  }

  Rect intersection(const Rect& other) const {
    IDXL_ASSERT(dim() == other.dim());
    Rect r = *this;
    for (int i = 0; i < dim(); ++i) {
      r.lo[i] = std::max(lo[i], other.lo[i]);
      r.hi[i] = std::min(hi[i], other.hi[i]);
    }
    return r;
  }

  bool overlaps(const Rect& other) const { return !intersection(other).empty(); }

  /// Row-major linearization of `p` within this rect; the bijection used to
  /// index physical storage and the dynamic checker's bitmask.
  int64_t linearize(const Point& p) const {
    IDXL_ASSERT(contains(p));
    int64_t idx = 0;
    for (int i = 0; i < dim(); ++i) idx = idx * (hi[i] - lo[i] + 1) + (p[i] - lo[i]);
    return idx;
  }

  /// Inverse of linearize().
  Point delinearize(int64_t idx) const {
    IDXL_ASSERT(idx >= 0 && idx < volume());
    Point p = lo;
    for (int i = dim() - 1; i >= 0; --i) {
      const int64_t extent = hi[i] - lo[i] + 1;
      p[i] = lo[i] + idx % extent;
      idx /= extent;
    }
    return p;
  }

  friend bool operator==(const Rect& a, const Rect& b) {
    if (a.empty() && b.empty() && a.dim() == b.dim()) return true;
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator!=(const Rect& a, const Rect& b) { return !(a == b); }

  std::string to_string() const { return lo.to_string() + ".." + hi.to_string(); }

  friend std::ostream& operator<<(std::ostream& os, const Rect& r) {
    return os << r.to_string();
  }

  /// Forward iterator over points in row-major order.
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Point;
    using difference_type = std::ptrdiff_t;
    using pointer = const Point*;
    using reference = const Point&;

    iterator() = default;
    iterator(const Rect* rect, Point p, bool end) : rect_(rect), p_(p), end_(end) {}

    const Point& operator*() const { return p_; }
    const Point* operator->() const { return &p_; }

    iterator& operator++() {
      for (int i = rect_->dim() - 1; i >= 0; --i) {
        if (++p_[i] <= rect_->hi[i]) return *this;
        p_[i] = rect_->lo[i];
      }
      end_ = true;
      return *this;
    }

    friend bool operator==(const iterator& a, const iterator& b) {
      return a.end_ == b.end_ && (a.end_ || a.p_ == b.p_);
    }
    friend bool operator!=(const iterator& a, const iterator& b) { return !(a == b); }

   private:
    const Rect* rect_ = nullptr;
    Point p_;
    bool end_ = true;
  };

  iterator begin() const {
    return iterator(this, lo, empty());
  }
  iterator end() const { return iterator(this, lo, true); }
};

struct RectHash {
  std::size_t operator()(const Rect& r) const {
    PointHash ph;
    return ph(r.lo) * 0x9E3779B97F4A7C15ull + ph(r.hi);
  }
};

}  // namespace idxl
