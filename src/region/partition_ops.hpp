#pragma once

#include <functional>

#include "region/region_forest.hpp"

namespace idxl {

/// Standard partition constructors (§2: "the exact method for determining
/// partitions is left unspecified" — these are the ones our applications
/// use, mirroring common Regent idioms).

/// Disjoint partition of a dense index space into `colors.volume()` nearly
/// equal blocks, one per color, blocked along every dimension. The classic
/// `partition(equal, ...)` of Regent.
PartitionId partition_equal(RegionForest& forest, IndexSpaceId parent,
                            const Rect& colors);

/// Aliased "halo" partition: each block of `blocks` grown by `radius` in
/// every dimension and clipped to the parent's bounds. Used for stencil
/// ghost cells.
PartitionId partition_halo(RegionForest& forest, IndexSpaceId parent,
                           PartitionId blocks, int64_t radius);

/// Partition a (1-D, dense) index space by an explicit coloring: color_of(i)
/// gives the color of element i. Colors must lie in `colors`. Disjoint by
/// construction. Used by the circuit app to partition the unstructured
/// graph.
PartitionId partition_by_coloring(RegionForest& forest, IndexSpaceId parent,
                                  const Rect& colors,
                                  const std::function<Point(const Point&)>& color_of);

/// Multi-colored variant: each element may receive any number of colors
/// (zero, one, or several), so the result may be aliased or incomplete.
/// Used for the circuit's shared/ghost node partitions.
PartitionId partition_by_multi_coloring(
    RegionForest& forest, IndexSpaceId parent, const Rect& colors,
    const std::function<void(const Point&, std::vector<Point>&)>& colors_of);

/// Dependent partitioning (Treichler et al., OOPSLA '16 — the partition
/// derivation the paper's data model builds on):
///
/// Image: partition `range` by where `fn` sends the subspaces of `domain_part`:
/// subspace(result, c) = { fn(x) : x ∈ subspace(domain_part, c) }. Typically
/// aliased (several sources may map to one target) — disjointness is
/// computed. The classic use is deriving the nodes each piece's wires touch
/// from a pointer field.
PartitionId partition_image(RegionForest& forest, IndexSpaceId range,
                            PartitionId domain_part,
                            const std::function<Point(const Point&)>& fn);

/// Multi-image: like partition_image but `fn` yields several range points
/// per domain point (e.g. a wire touching both endpoints).
PartitionId partition_image_multi(
    RegionForest& forest, IndexSpaceId range, PartitionId domain_part,
    const std::function<void(const Point&, std::vector<Point>&)>& fn);

/// Preimage: partition `domain` by where `fn` sends each of its points
/// relative to `range_part`: x lands in color c iff fn(x) ∈
/// subspace(range_part, c). Disjoint whenever `range_part` is disjoint
/// (each point has one image). The classic use is partitioning edges by the
/// partition of the nodes they point at.
PartitionId partition_preimage(RegionForest& forest, IndexSpaceId domain,
                               PartitionId range_part,
                               const std::function<Point(const Point&)>& fn);

}  // namespace idxl
