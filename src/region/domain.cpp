#include "region/domain.hpp"

#include <algorithm>

namespace idxl {

Domain Domain::from_points(std::vector<Point> pts) {
  Domain d;
  if (pts.empty()) {
    d.bounds_ = Rect();  // canonical empty
    d.points_ = std::move(pts);
    return d;
  }
  const int dim = pts.front().dim;
  for (const Point& p : pts) IDXL_ASSERT_MSG(p.dim == dim, "mixed-dim point list");
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());

  Rect bounds(pts.front(), pts.front());
  for (const Point& p : pts)
    for (int i = 0; i < dim; ++i) {
      bounds.lo[i] = std::min(bounds.lo[i], p[i]);
      bounds.hi[i] = std::max(bounds.hi[i], p[i]);
    }
  d.bounds_ = bounds;
  // A sparse list that fills its bounding box exactly is really dense;
  // normalize so dense() reflects structure, not construction history.
  if (static_cast<int64_t>(pts.size()) == bounds.volume()) {
    return Domain(bounds);
  }
  d.points_ = std::move(pts);
  return d;
}

bool Domain::contains(const Point& p) const {
  if (p.dim != dim()) return false;
  if (!bounds_.contains(p)) return false;
  if (dense()) return true;
  return std::binary_search(points_->begin(), points_->end(), p);
}

bool Domain::disjoint_from(const Domain& other) const {
  if (empty() || other.empty()) return true;
  if (dim() != other.dim()) return true;
  if (!bounds_.overlaps(other.bounds_)) return true;
  if (dense() && other.dense()) return false;  // bounding boxes overlap
  // Iterate the smaller side, membership-test against the larger.
  const Domain& small = volume() <= other.volume() ? *this : other;
  const Domain& large = volume() <= other.volume() ? other : *this;
  bool disjoint = true;
  small.for_each([&](const Point& p) {
    if (disjoint && large.contains(p)) disjoint = false;
  });
  return disjoint;
}

bool Domain::contains_domain(const Domain& other) const {
  if (other.empty()) return true;
  if (dim() != other.dim()) return false;
  if (dense() && other.dense()) return bounds_.contains(other.bounds_);
  bool ok = true;
  other.for_each([&](const Point& p) {
    if (ok && !contains(p)) ok = false;
  });
  return ok;
}

Domain Domain::intersection(const Domain& other) const {
  IDXL_ASSERT(dim() == other.dim());
  if (dense() && other.dense()) return Domain(bounds_.intersection(other.bounds_));
  std::vector<Point> pts;
  const Domain& small = volume() <= other.volume() ? *this : other;
  const Domain& large = volume() <= other.volume() ? other : *this;
  small.for_each([&](const Point& p) {
    if (large.contains(p)) pts.push_back(p);
  });
  return from_points(std::move(pts));
}

int64_t Domain::linear_index(const Point& p) const {
  IDXL_ASSERT_MSG(contains(p), "linear_index of a point outside the domain");
  if (dense()) return bounds_.linearize(p);
  const auto it = std::lower_bound(points_->begin(), points_->end(), p);
  return static_cast<int64_t>(it - points_->begin());
}

std::vector<Point> Domain::points() const {
  if (!dense()) return *points_;
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(bounds_.volume()));
  for (const Point& p : bounds_) pts.push_back(p);
  return pts;
}

bool operator==(const Domain& a, const Domain& b) {
  if (a.empty() && b.empty()) return a.dim() == b.dim();
  if (a.dense() != b.dense()) return false;
  if (a.dense()) return a.bounds_ == b.bounds_;
  return *a.points_ == *b.points_;
}

std::string Domain::to_string() const {
  if (dense()) return bounds_.to_string();
  return "sparse[" + std::to_string(volume()) + " pts in " + bounds_.to_string() + "]";
}

}  // namespace idxl
