#pragma once

#include <cstdint>
#include <vector>

#include "region/point.hpp"

namespace idxl {

/// Static bounding-volume hierarchy over (Rect, id) items.
///
/// Legion's physical analysis uses a distributed BVH to find the
/// sub-collections a task's regions interfere with in O(log |P|) instead of
/// scanning every partition color (§5). This is the in-process analogue:
/// the DependenceTracker queries it to prune candidate region uses, and the
/// physical-analysis cost model of the simulator charges the log factor it
/// provides.
///
/// Built once over a snapshot of items (median split on the longest axis);
/// queries report every item whose rect overlaps the probe rect. Callers
/// layer their own exact tests on top (rects here are bounding boxes of
/// possibly-sparse domains).
class RectBVH {
 public:
  RectBVH() = default;

  /// Build from items; empties any previous tree. O(n log n).
  void build(std::vector<std::pair<Rect, uint32_t>> items);

  bool empty() const { return nodes_.empty(); }
  std::size_t size() const { return item_count_; }

  /// Invoke fn(id) for every item whose rect overlaps `query`.
  template <typename Fn>
  void query(const Rect& query, Fn&& fn) const {
    if (nodes_.empty()) return;
    query_node(0, query, fn);
  }

  /// Number of node visits performed by the last query (for tests /
  /// complexity assertions). Not thread-safe; diagnostic only.
  std::size_t last_query_visits() const { return last_visits_; }

 private:
  struct Node {
    Rect bounds;
    // Leaf: item index range [first, first+count) into items_.
    // Interior: children at left/right.
    uint32_t first = 0;
    uint32_t count = 0;   // > 0 marks a leaf
    uint32_t left = 0;
    uint32_t right = 0;
  };

  static constexpr uint32_t kLeafSize = 4;

  uint32_t build_node(uint32_t first, uint32_t count);

  template <typename Fn>
  void query_node(uint32_t index, const Rect& query, Fn&& fn) const {
    ++last_visits_;
    const Node& node = nodes_[index];
    if (!node.bounds.overlaps(query)) return;
    if (node.count > 0) {
      for (uint32_t i = node.first; i < node.first + node.count; ++i) {
        ++last_visits_;
        if (items_[i].first.overlaps(query)) fn(items_[i].second);
      }
      return;
    }
    query_node(node.left, query, fn);
    query_node(node.right, query, fn);
  }

  std::vector<std::pair<Rect, uint32_t>> items_;
  std::vector<Node> nodes_;
  std::size_t item_count_ = 0;
  mutable std::size_t last_visits_ = 0;
};

}  // namespace idxl
