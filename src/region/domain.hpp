#pragma once

#include <optional>
#include <vector>

#include "region/point.hpp"

namespace idxl {

/// A set of points: either a dense rectangle or an explicit (sparse) point
/// list with a bounding rectangle. Launch domains, index spaces and
/// partition color spaces are all Domains.
///
/// The sparse form is what makes the DOM radiation sweeps expressible: each
/// sweep stage launches over a *diagonal slice* of a 3-D grid, which is not
/// a rectangle.
class Domain {
 public:
  Domain() = default;

  /// Dense domain covering `bounds`.
  explicit Domain(const Rect& bounds) : bounds_(bounds) {}

  /// Sparse domain from an explicit point list (deduplicated, canonical
  /// order). All points must share one dimensionality.
  static Domain from_points(std::vector<Point> pts);

  /// Convenience: dense 1-D domain [0, n).
  static Domain line(int64_t n) { return Domain(Rect::line(n)); }

  int dim() const { return bounds_.dim(); }
  bool dense() const { return !points_.has_value(); }
  const Rect& bounds() const { return bounds_; }

  int64_t volume() const {
    return dense() ? bounds_.volume() : static_cast<int64_t>(points_->size());
  }
  bool empty() const { return volume() == 0; }

  bool contains(const Point& p) const;

  /// True iff no point is shared with `other`.
  bool disjoint_from(const Domain& other) const;

  /// True iff every point of `other` is contained in this domain.
  bool contains_domain(const Domain& other) const;

  Domain intersection(const Domain& other) const;

  /// Materialize the point list (row-major for dense domains).
  std::vector<Point> points() const;

  /// Rank of `p` in the row-major enumeration of this domain (0-based).
  /// O(1) for dense domains, O(log n) for sparse ones.
  int64_t linear_index(const Point& p) const;

  /// Call `fn(p)` for each point, avoiding materialization for dense
  /// domains. Fn: void(const Point&).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (dense()) {
      for (const Point& p : bounds_) fn(p);
    } else {
      for (const Point& p : *points_) fn(p);
    }
  }

  friend bool operator==(const Domain& a, const Domain& b);

  std::string to_string() const;

 private:
  Rect bounds_;                               // tight bounding box
  std::optional<std::vector<Point>> points_;  // sorted & unique when sparse
};

}  // namespace idxl
