#pragma once

#include <type_traits>

#include "region/region_forest.hpp"

namespace idxl {

/// Privileges a task declares on a region argument (§2). Declared up front
/// so the dependence analysis can run *before* the task executes, and so
/// index-launch safety can be decided from the launch descriptor alone.
enum class Privilege : uint8_t {
  kRead,
  kWrite,      // write-only (write-discard)
  kReadWrite,
  kReduce,     // reduction with a commutative operator
};

inline bool privilege_writes(Privilege p) {
  return p == Privilege::kWrite || p == Privilege::kReadWrite ||
         p == Privilege::kReduce;
}
inline bool privilege_reads(Privilege p) {
  return p == Privilege::kRead || p == Privilege::kReadWrite;
}

inline const char* privilege_name(Privilege p) {
  switch (p) {
    case Privilege::kRead: return "read";
    case Privilege::kWrite: return "write";
    case Privilege::kReadWrite: return "read-write";
    case Privilege::kReduce: return "reduce";
  }
  return "?";
}

/// Built-in commutative reduction operators.
enum class ReductionOp : uint8_t { kNone, kSum, kProd, kMin, kMax };

template <typename T>
T apply_reduction(ReductionOp op, T lhs, T rhs) {
  switch (op) {
    case ReductionOp::kSum: return lhs + rhs;
    case ReductionOp::kProd: return lhs * rhs;
    case ReductionOp::kMin: return rhs < lhs ? rhs : lhs;
    case ReductionOp::kMax: return lhs < rhs ? rhs : lhs;
    case ReductionOp::kNone: break;
  }
  IDXL_ASSERT_MSG(false, "apply_reduction with kNone");
  return lhs;
}

/// Typed view of one field of a region. The accessor addresses the root's
/// storage (so sibling subregions alias the same memory, as in Legion) but
/// bounds-checks every access against the *subregion's* domain and the
/// declared privilege — this is how privilege violations surface in tests.
template <typename T>
class Accessor {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  Accessor(RegionForest& forest, RegionId r, FieldId f, Privilege priv,
           ReductionOp redop = ReductionOp::kNone)
      : data_(reinterpret_cast<T*>(forest.field_data(r, f))),
        storage_bounds_(forest.storage_bounds(r)),
        domain_(&forest.region_domain(r)),
        priv_(priv),
        redop_(redop) {
    IDXL_REQUIRE(forest.field(forest.region(r).fspace, f).size == sizeof(T),
                 "accessor element type does not match field size");
    IDXL_REQUIRE((priv == Privilege::kReduce) == (redop != ReductionOp::kNone),
                 "reduction op must be given iff privilege is reduce");
  }

  /// Construct from pre-resolved storage (used by PhysicalRegion, which
  /// captures pointers at issue time so task bodies never touch the forest
  /// concurrently with issuance). `field_size` is checked against T here.
  Accessor(std::byte* data, std::size_t field_size, const Rect& storage_bounds,
           const Domain* domain, Privilege priv, ReductionOp redop)
      : data_(reinterpret_cast<T*>(data)),
        storage_bounds_(storage_bounds),
        domain_(domain),
        priv_(priv),
        redop_(redop) {
    IDXL_REQUIRE(field_size == sizeof(T),
                 "accessor element type does not match field size");
    IDXL_REQUIRE((priv == Privilege::kReduce) == (redop != ReductionOp::kNone),
                 "reduction op must be given iff privilege is reduce");
  }

  const T& read(const Point& p) const {
    IDXL_ASSERT_MSG(privilege_reads(priv_), "read access without read privilege");
    return data_[slot(p)];
  }

  void write(const Point& p, const T& v) {
    IDXL_ASSERT_MSG(priv_ == Privilege::kWrite || priv_ == Privilege::kReadWrite,
                    "write access without write privilege");
    data_[slot(p)] = v;
  }

  void reduce(const Point& p, const T& v) {
    IDXL_ASSERT_MSG(priv_ == Privilege::kReduce, "reduce access without reduce privilege");
    data_[slot(p)] = apply_reduction(redop_, data_[slot(p)], v);
  }

  /// Read-write shorthand for kReadWrite accessors.
  T& ref(const Point& p) {
    IDXL_ASSERT_MSG(priv_ == Privilege::kReadWrite, "ref requires read-write privilege");
    return data_[slot(p)];
  }

  const Domain& domain() const { return *domain_; }

 private:
  std::size_t slot(const Point& p) const {
    IDXL_ASSERT_MSG(domain_->contains(p), "region access out of privilege bounds");
    return static_cast<std::size_t>(storage_bounds_.linearize(p));
  }

  T* data_;
  Rect storage_bounds_;
  const Domain* domain_;
  Privilege priv_;
  ReductionOp redop_;
};

}  // namespace idxl
