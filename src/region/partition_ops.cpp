#include "region/partition_ops.hpp"

namespace idxl {

PartitionId partition_equal(RegionForest& forest, IndexSpaceId parent,
                            const Rect& colors) {
  const Domain& dom = forest.domain(parent);
  IDXL_REQUIRE(dom.dense(), "partition_equal requires a dense parent");
  const Rect& bounds = dom.bounds();
  IDXL_REQUIRE(colors.dim() == bounds.dim(),
               "color space dimensionality must match the index space");

  std::vector<Domain> subs;
  subs.reserve(static_cast<std::size_t>(colors.volume()));
  for (const Point& color : colors) {
    Rect block = bounds;
    for (int d = 0; d < bounds.dim(); ++d) {
      const int64_t extent = bounds.hi[d] - bounds.lo[d] + 1;
      const int64_t nc = colors.hi[d] - colors.lo[d] + 1;
      const int64_t ci = color[d] - colors.lo[d];
      // Split extent into nc blocks whose sizes differ by at most one.
      const int64_t base = extent / nc, rem = extent % nc;
      const int64_t start = ci * base + std::min(ci, rem);
      const int64_t len = base + (ci < rem ? 1 : 0);
      block.lo[d] = bounds.lo[d] + start;
      block.hi[d] = bounds.lo[d] + start + len - 1;
    }
    subs.emplace_back(block);
  }
  return forest.create_partition(parent, colors, std::move(subs),
                                 Disjointness::kDisjoint);
}

PartitionId partition_halo(RegionForest& forest, IndexSpaceId parent,
                           PartitionId blocks, int64_t radius) {
  IDXL_REQUIRE(radius >= 0, "halo radius must be non-negative");
  IDXL_REQUIRE(forest.partition_parent(blocks) == parent,
               "halo must grow a partition of the same index space");
  const Rect& bounds = forest.domain(parent).bounds();
  const Rect& colors = forest.color_space(blocks);

  std::vector<Domain> subs;
  subs.reserve(static_cast<std::size_t>(colors.volume()));
  for (const Point& color : colors) {
    const Domain& block = forest.domain(forest.subspace(blocks, color));
    IDXL_REQUIRE(block.dense(), "partition_halo requires dense blocks");
    Rect grown = block.bounds();
    for (int d = 0; d < grown.dim(); ++d) {
      grown.lo[d] = std::max(grown.lo[d] - radius, bounds.lo[d]);
      grown.hi[d] = std::min(grown.hi[d] + radius, bounds.hi[d]);
    }
    subs.emplace_back(grown);
  }
  return forest.create_partition(parent, colors, std::move(subs),
                                 Disjointness::kAliased);
}

PartitionId partition_by_coloring(RegionForest& forest, IndexSpaceId parent,
                                  const Rect& colors,
                                  const std::function<Point(const Point&)>& color_of) {
  const Domain& dom = forest.domain(parent);
  std::vector<std::vector<Point>> buckets(static_cast<std::size_t>(colors.volume()));
  dom.for_each([&](const Point& p) {
    const Point c = color_of(p);
    IDXL_REQUIRE(colors.contains(c), "coloring produced a color outside the color space");
    buckets[static_cast<std::size_t>(colors.linearize(c))].push_back(p);
  });

  std::vector<Domain> subs;
  subs.reserve(buckets.size());
  for (auto& bucket : buckets) subs.push_back(Domain::from_points(std::move(bucket)));
  return forest.create_partition(parent, colors, std::move(subs),
                                 Disjointness::kDisjoint);
}

PartitionId partition_by_multi_coloring(
    RegionForest& forest, IndexSpaceId parent, const Rect& colors,
    const std::function<void(const Point&, std::vector<Point>&)>& colors_of) {
  const Domain& dom = forest.domain(parent);
  std::vector<std::vector<Point>> buckets(static_cast<std::size_t>(colors.volume()));
  std::vector<Point> scratch;
  dom.for_each([&](const Point& p) {
    scratch.clear();
    colors_of(p, scratch);
    for (const Point& c : scratch) {
      IDXL_REQUIRE(colors.contains(c), "coloring produced a color outside the color space");
      buckets[static_cast<std::size_t>(colors.linearize(c))].push_back(p);
    }
  });

  std::vector<Domain> subs;
  subs.reserve(buckets.size());
  for (auto& bucket : buckets) subs.push_back(Domain::from_points(std::move(bucket)));
  return forest.create_partition(parent, colors, std::move(subs),
                                 Disjointness::kCompute);
}

PartitionId partition_image(RegionForest& forest, IndexSpaceId range,
                            PartitionId domain_part,
                            const std::function<Point(const Point&)>& fn) {
  return partition_image_multi(forest, range, domain_part,
                               [&fn](const Point& p, std::vector<Point>& out) {
                                 out.push_back(fn(p));
                               });
}

PartitionId partition_image_multi(
    RegionForest& forest, IndexSpaceId range, PartitionId domain_part,
    const std::function<void(const Point&, std::vector<Point>&)>& fn) {
  const Rect& colors = forest.color_space(domain_part);
  const Domain& range_dom = forest.domain(range);

  std::vector<Domain> subs;
  subs.reserve(static_cast<std::size_t>(colors.volume()));
  std::vector<Point> targets;
  for (const Point& color : colors) {
    std::vector<Point> image_points;
    forest.domain(forest.subspace(domain_part, color)).for_each([&](const Point& x) {
      targets.clear();
      fn(x, targets);
      for (const Point& y : targets) {
        IDXL_REQUIRE(range_dom.contains(y),
                     "image function produced a point outside the range space");
        image_points.push_back(y);
      }
    });
    subs.push_back(Domain::from_points(std::move(image_points)));
  }
  return forest.create_partition(range, colors, std::move(subs),
                                 Disjointness::kCompute);
}

PartitionId partition_preimage(RegionForest& forest, IndexSpaceId domain,
                               PartitionId range_part,
                               const std::function<Point(const Point&)>& fn) {
  const Rect& colors = forest.color_space(range_part);
  std::vector<std::vector<Point>> buckets(static_cast<std::size_t>(colors.volume()));

  forest.domain(domain).for_each([&](const Point& x) {
    const Point y = fn(x);
    // Find which subspace(s) of the range partition hold fn(x); with an
    // aliased range partition a point may land in several colors.
    for (const Point& color : colors) {
      if (forest.domain(forest.subspace(range_part, color)).contains(y))
        buckets[static_cast<std::size_t>(colors.linearize(color))].push_back(x);
    }
  });

  std::vector<Domain> subs;
  subs.reserve(buckets.size());
  for (auto& bucket : buckets) subs.push_back(Domain::from_points(std::move(bucket)));
  // Disjoint when the range partition is disjoint (each point has exactly
  // one image, which lives in at most one subspace).
  return forest.create_partition(
      domain, colors, std::move(subs),
      forest.is_disjoint(range_part) ? Disjointness::kCompute : Disjointness::kAliased);
}

}  // namespace idxl
