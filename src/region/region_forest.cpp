#include "region/region_forest.hpp"

#include <algorithm>

namespace idxl {

IndexSpaceId RegionForest::create_index_space(Domain domain) {
  if (!journal_suspended_) {
    SetupOp op;
    op.kind = SetupOp::Kind::kIndexSpace;
    op.domain = domain;
    journal_.push_back(std::move(op));
  }
  index_spaces_.push_back(std::move(domain));
  return IndexSpaceId{static_cast<uint32_t>(index_spaces_.size() - 1)};
}

const Domain& RegionForest::domain(IndexSpaceId is) const {
  IDXL_ASSERT(is.valid() && is.id < index_spaces_.size());
  return index_spaces_[is.id];
}

FieldSpaceId RegionForest::create_field_space() {
  SetupOp op;
  op.kind = SetupOp::Kind::kFieldSpace;
  journal_.push_back(std::move(op));
  field_spaces_.emplace_back();
  return FieldSpaceId{static_cast<uint32_t>(field_spaces_.size() - 1)};
}

FieldId RegionForest::allocate_field(FieldSpaceId fs, std::size_t field_size,
                                     std::string name) {
  IDXL_ASSERT(fs.valid() && fs.id < field_spaces_.size());
  IDXL_REQUIRE(field_size > 0, "field size must be positive");
  auto& fields = field_spaces_[fs.id];
  const FieldId id = static_cast<FieldId>(fields.size());
  SetupOp op;
  op.kind = SetupOp::Kind::kField;
  op.a = fs.id;
  op.b = static_cast<uint32_t>(field_size);
  op.name = name;
  journal_.push_back(std::move(op));
  fields.push_back(FieldInfo{id, field_size, std::move(name)});
  return id;
}

const FieldInfo& RegionForest::field(FieldSpaceId fs, FieldId f) const {
  IDXL_ASSERT(fs.valid() && fs.id < field_spaces_.size());
  IDXL_ASSERT(f < field_spaces_[fs.id].size());
  return field_spaces_[fs.id][f];
}

const std::vector<FieldInfo>& RegionForest::fields(FieldSpaceId fs) const {
  IDXL_ASSERT(fs.valid() && fs.id < field_spaces_.size());
  return field_spaces_[fs.id];
}

PartitionId RegionForest::create_partition(IndexSpaceId parent, const Rect& color_space,
                                           std::vector<Domain> subspaces,
                                           Disjointness d) {
  IDXL_REQUIRE(!color_space.empty(), "partition color space must be non-empty");
  IDXL_REQUIRE(static_cast<int64_t>(subspaces.size()) == color_space.volume(),
               "one subspace required per color");
  const Domain& parent_dom = domain(parent);
  for (const Domain& sub : subspaces)
    IDXL_REQUIRE(parent_dom.contains_domain(sub),
                 "partition subspace escapes its parent index space");

  {
    SetupOp op;
    op.kind = SetupOp::Kind::kPartition;
    op.a = parent.id;
    op.color_space = color_space;
    op.subspaces = subspaces;
    op.disjointness = static_cast<uint8_t>(d);
    journal_.push_back(std::move(op));
  }

  PartitionNode node;
  node.parent = parent;
  node.color_space = color_space;
  node.subspaces.reserve(subspaces.size());
  journal_suspended_ = true;  // subspace index spaces ride in the op above
  for (Domain& sub : subspaces)
    node.subspaces.push_back(create_index_space(std::move(sub)));
  journal_suspended_ = false;

  partitions_.push_back(std::move(node));
  const PartitionId pid{static_cast<uint32_t>(partitions_.size() - 1)};

  switch (d) {
    case Disjointness::kDisjoint:
      partitions_[pid.id].disjoint = true;
#ifndef NDEBUG
      IDXL_ASSERT_MSG(verify_disjoint(pid),
                      "partition declared disjoint but subspaces overlap");
#endif
      break;
    case Disjointness::kAliased:
      partitions_[pid.id].disjoint = false;
      break;
    case Disjointness::kCompute:
      partitions_[pid.id].disjoint = verify_disjoint(pid);
      break;
  }
  return pid;
}

IndexSpaceId RegionForest::subspace(PartitionId p, const Point& color) const {
  IDXL_ASSERT(p.valid() && p.id < partitions_.size());
  const PartitionNode& node = partitions_[p.id];
  IDXL_REQUIRE(node.color_space.contains(color), "color outside partition color space");
  return node.subspaces[static_cast<std::size_t>(node.color_space.linearize(color))];
}

const Rect& RegionForest::color_space(PartitionId p) const {
  IDXL_ASSERT(p.valid() && p.id < partitions_.size());
  return partitions_[p.id].color_space;
}

IndexSpaceId RegionForest::partition_parent(PartitionId p) const {
  IDXL_ASSERT(p.valid() && p.id < partitions_.size());
  return partitions_[p.id].parent;
}

bool RegionForest::is_disjoint(PartitionId p) const {
  IDXL_ASSERT(p.valid() && p.id < partitions_.size());
  return partitions_[p.id].disjoint;
}

bool RegionForest::verify_disjoint(PartitionId p) const {
  const PartitionNode& node = partitions_[p.id];
  const std::size_t n = node.subspaces.size();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (!domain(node.subspaces[i]).disjoint_from(domain(node.subspaces[j])))
        return false;
  return true;
}

RegionId RegionForest::create_region(IndexSpaceId is, FieldSpaceId fs) {
  {
    SetupOp op;
    op.kind = SetupOp::Kind::kRegion;
    op.a = is.id;
    op.b = fs.id;
    journal_.push_back(std::move(op));
  }
  RegionInfo info;
  info.handle = RegionId{static_cast<uint32_t>(regions_.size())};
  info.root = info.handle;
  info.tree_id = next_tree_id_++;
  info.ispace = is;
  info.fspace = fs;
  regions_.push_back(info);

  auto store = std::make_unique<RootStorage>();
  store->bounds = domain(is).bounds();
  const auto vol = static_cast<std::size_t>(store->bounds.volume());
  for (const FieldInfo& f : fields(fs))
    store->data.emplace(f.id, std::vector<std::byte>(vol * f.size));
  storage_.resize(regions_.size());
  storage_[info.handle.id] = std::move(store);
  return info.handle;
}

RegionId RegionForest::subregion(RegionId parent, PartitionId p, const Point& color) {
  const RegionInfo& par = region(parent);
  const PartitionNode& node = partitions_[p.id];
  IDXL_REQUIRE(node.parent == par.ispace,
               "partition does not partition this region's index space");
  IDXL_REQUIRE(node.color_space.contains(color),
               "projection functor selected a color outside the partition");
  const uint64_t key = (uint64_t{parent.id} << 40) ^ (uint64_t{p.id} << 20) ^
                       static_cast<uint64_t>(node.color_space.linearize(color));
  if (auto it = subregion_cache_.find(key); it != subregion_cache_.end())
    return it->second;

  {
    SetupOp op;
    op.kind = SetupOp::Kind::kSubregion;
    op.a = parent.id;
    op.b = p.id;
    op.color = color;
    journal_.push_back(std::move(op));
  }

  RegionInfo info;
  info.handle = RegionId{static_cast<uint32_t>(regions_.size())};
  info.root = par.root;
  info.tree_id = par.tree_id;
  info.ispace = subspace(p, color);
  info.fspace = par.fspace;
  info.through = p;
  info.color = color;
  regions_.push_back(info);
  storage_.resize(regions_.size());  // subregions own no storage
  subregion_cache_.emplace(key, info.handle);
  return info.handle;
}

const std::vector<RegionId>& RegionForest::subregion_table(RegionId parent,
                                                           PartitionId p) {
  IDXL_ASSERT(p.valid() && p.id < partitions_.size());
  const uint64_t key = (uint64_t{parent.id} << 32) | p.id;
  if (auto it = subregion_tables_.find(key); it != subregion_tables_.end())
    return it->second;

  const Rect colors = partitions_[p.id].color_space;
  std::vector<RegionId> table;
  table.reserve(static_cast<std::size_t>(colors.volume()));
  for (const Point& color : colors) table.push_back(subregion(parent, p, color));
  return subregion_tables_.emplace(key, std::move(table)).first->second;
}

const RegionInfo& RegionForest::region(RegionId r) const {
  IDXL_ASSERT(r.valid() && r.id < regions_.size());
  return regions_[r.id];
}

bool RegionForest::regions_interfere(RegionId a, RegionId b) const {
  const RegionInfo& ra = region(a);
  const RegionInfo& rb = region(b);
  if (ra.tree_id != rb.tree_id) return false;
  return !domain(ra.ispace).disjoint_from(domain(rb.ispace));
}

bool RegionForest::partitions_independent(RegionId ra, PartitionId p, RegionId rb,
                                          PartitionId q) const {
  const RegionInfo& a = region(ra);
  const RegionInfo& b = region(rb);
  if (a.tree_id != b.tree_id) return true;
  IDXL_ASSERT(p.valid() && q.valid());
  const Domain& pd = domain(partitions_[p.id].parent);
  const Domain& qd = domain(partitions_[q.id].parent);
  return pd.disjoint_from(qd);
}

std::byte* RegionForest::field_data(RegionId r, FieldId f) {
  const RegionInfo& info = region(r);
  auto& store = storage_[info.root.id];
  IDXL_ASSERT(store != nullptr);
  auto it = store->data.find(f);
  IDXL_ASSERT_MSG(it != store->data.end(), "unknown field for region");
  return it->second.data();
}

const std::byte* RegionForest::field_data(RegionId r, FieldId f) const {
  const RegionInfo& info = region(r);
  const auto& store = storage_[info.root.id];
  IDXL_ASSERT(store != nullptr);
  auto it = store->data.find(f);
  IDXL_ASSERT_MSG(it != store->data.end(), "unknown field for region");
  return it->second.data();
}

void RegionForest::replay_setup(const std::vector<SetupOp>& ops) {
  IDXL_REQUIRE(index_spaces_.empty() && field_spaces_.empty() &&
                   partitions_.empty() && regions_.empty(),
               "replay_setup requires an empty forest");
  for (const SetupOp& op : ops) {
    switch (op.kind) {
      case SetupOp::Kind::kIndexSpace:
        create_index_space(op.domain);
        break;
      case SetupOp::Kind::kFieldSpace:
        create_field_space();
        break;
      case SetupOp::Kind::kField:
        allocate_field(FieldSpaceId{op.a}, op.b, op.name);
        break;
      case SetupOp::Kind::kPartition:
        create_partition(IndexSpaceId{op.a}, op.color_space, op.subspaces,
                         static_cast<Disjointness>(op.disjointness));
        break;
      case SetupOp::Kind::kRegion:
        create_region(IndexSpaceId{op.a}, FieldSpaceId{op.b});
        break;
      case SetupOp::Kind::kSubregion:
        subregion(RegionId{op.a}, PartitionId{op.b}, op.color);
        break;
    }
  }
}

const Rect& RegionForest::storage_bounds(RegionId r) const {
  const RegionInfo& info = region(r);
  const auto& store = storage_[info.root.id];
  IDXL_ASSERT(store != nullptr);
  return store->bounds;
}

}  // namespace idxl
