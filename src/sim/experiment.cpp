#include "sim/experiment.hpp"

#include <cstdio>

namespace idxl::sim {

std::vector<Series> run_scaling_experiment(
    const std::function<AppSpec(uint32_t nodes)>& app_builder,
    const std::vector<SimConfig>& configs, const std::vector<uint32_t>& node_counts,
    const std::function<double(const SimResult&, uint32_t nodes)>& metric) {
  std::vector<Series> out;
  out.reserve(configs.size());
  for (const SimConfig& base : configs) {
    Series series;
    series.label = base.label();
    for (uint32_t nodes : node_counts) {
      SimConfig config = base;
      config.nodes = nodes;
      const AppSpec app = app_builder(nodes);
      const SimResult r = simulate(app, config);
      series.points.emplace_back(nodes, metric(r, nodes));
    }
    out.push_back(std::move(series));
  }
  return out;
}

void print_figure(const std::string& title, const std::string& unit,
                  const std::vector<uint32_t>& node_counts,
                  const std::vector<Series>& series) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-8s", "nodes");
  for (const Series& s : series) std::printf("%22s", s.label.c_str());
  std::printf("   [%s]\n", unit.c_str());
  for (std::size_t row = 0; row < node_counts.size(); ++row) {
    std::printf("%-8u", node_counts[row]);
    for (const Series& s : series) {
      if (row < s.points.size() && s.points[row].first == node_counts[row])
        std::printf("%22.3f", s.points[row].second);
      else
        std::printf("%22s", "-");
    }
    std::printf("\n");
  }
}

std::vector<uint32_t> nodes_up_to(uint32_t max_nodes) {
  std::vector<uint32_t> nodes;
  for (uint32_t n = 1; n <= max_nodes; n *= 2) nodes.push_back(n);
  return nodes;
}

std::vector<SimConfig> four_configs(bool tracing, bool dynamic_checks) {
  std::vector<SimConfig> configs(4);
  configs[0].dcr = true;
  configs[0].idx = true;
  configs[1].dcr = true;
  configs[1].idx = false;
  configs[2].dcr = false;
  configs[2].idx = true;
  configs[3].dcr = false;
  configs[3].idx = false;
  for (SimConfig& c : configs) {
    c.tracing = tracing;
    c.dynamic_checks = dynamic_checks;
  }
  return configs;
}

}  // namespace idxl::sim
