#include "sim/pipeline_sim.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "support/error.hpp"

namespace idxl::sim {

namespace {

/// Deterministic per-(node, launch, iteration) jitter in [0, 1): splitmix64
/// of the tuple. Reproducible across runs, uncorrelated across draws.
double noise_draw(uint32_t node, int iter, std::size_t launch, uint64_t seed) {
  uint64_t z = seed ^ (uint64_t{node} << 40) ^ (static_cast<uint64_t>(iter) << 20) ^
               static_cast<uint64_t>(launch);
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

double log2_colors(int64_t tasks) {
  return std::log2(static_cast<double>(std::max<int64_t>(tasks, 2)));
}

}  // namespace

int64_t local_task_count(int64_t tasks, uint32_t nodes, uint32_t n) {
  const int64_t base = tasks / nodes;
  const int64_t rem = tasks % nodes;
  return base + (static_cast<int64_t>(n) < rem ? 1 : 0);
}

SimResult simulate(const AppSpec& app, const SimConfig& config) {
  const uint32_t N = config.nodes;
  IDXL_REQUIRE(N >= 1, "need at least one node");
  const MachineParams& m = config.machine;

  std::vector<double> util(N, 0.0);  // runtime processor busy-until
  std::vector<double> gpu(N, 0.0);   // GPU busy-until
  std::vector<double> nic(N, 0.0);   // sender NIC busy-until
  std::vector<double> arrival(N, 0.0);    // distribution arrival, per launch
  // Completion time of the most recent launch of each dependence chain.
  std::unordered_map<int, std::vector<double>> chain_done;
  auto chain_of = [&](int chain) -> std::vector<double>& {
    auto [it, inserted] = chain_done.try_emplace(chain);
    if (inserted) it->second.assign(N, 0.0);
    return it->second;
  };

  SimResult result;
  double warmup_end = 0.0;

  const int total_iters = app.warmup + app.iterations;
  for (int iter = 0; iter < total_iters; ++iter) {
    // Tracing replays from the second execution of the captured loop.
    const bool traced_now = config.tracing && iter >= 1;
    const bool first_iter = iter == 0;

    for (std::size_t li = 0; li < app.iteration.size(); ++li) {
      const LaunchSpec& L = app.iteration[li];
      const double logical_task_s =
          traced_now ? m.logical_task_traced_s : m.logical_task_s;
      const double physical_scale = traced_now ? 0.25 : 1.0;  // trace replay
      const double check_s =
          (config.idx && L.nontrivial_functor && config.dynamic_checks)
              ? static_cast<double>(L.tasks) * m.check_point_s +
                    static_cast<double>(L.check_bits) * m.check_bit_s
              : 0.0;

      // ---- Stage 1+2: issuance + logical analysis ----
      // Bounded run-ahead: a node's runtime processor may work at most
      // `runahead_window_s` ahead of its own execution timeline.
      for (uint32_t n = 0; n < N; ++n)
        util[n] = std::max(util[n], gpu[n] - m.runahead_window_s);
      if (config.dcr) {
        // Every node runs the identical (replicated) issuance stream.
        for (uint32_t n = 0; n < N; ++n) {
          if (config.idx) {
            util[n] += m.issue_launch_s + L.num_args * m.logical_launch_arg_s + check_s;
            result.stages.issue_s += m.issue_launch_s + L.num_args * m.logical_launch_arg_s;
            result.stages.check_s += check_s;
            result.runtime_ops += 1 + static_cast<uint64_t>(L.num_args);
          } else {
            const double cost = static_cast<double>(L.tasks) *
                                (m.issue_task_s + L.num_args * logical_task_s);
            util[n] += cost;
            result.stages.issue_s += cost;
            result.runtime_ops += static_cast<uint64_t>(L.tasks);
          }
        }
        if (check_s > 0) result.check_seconds += check_s;
      } else {
        // Centralized: node 0 owns issuance and logical analysis.
        if (config.idx) {
          util[0] += m.issue_launch_s + check_s;
          result.stages.issue_s += m.issue_launch_s;
          result.stages.check_s += check_s;
          result.runtime_ops += 1;
          if (config.tracing && !config.bulk_tracing) {
            // Tracing operates on individual tasks, forcing the launch to
            // expand and re-enter the stream as point tasks *before*
            // distribution (§6.2.1) — the whole-partition benefit is lost.
            const double cost = static_cast<double>(L.tasks) *
                                (m.expand_task_s + m.issue_task_s +
                                 L.num_args * logical_task_s);
            util[0] += cost;
            result.stages.issue_s += cost;
            result.runtime_ops += static_cast<uint64_t>(L.tasks);
          } else {
            // Whole-partition logical analysis; with bulk tracing the
            // replayed cost shrinks further after the capture iteration.
            const double per_arg = (config.bulk_tracing && traced_now)
                                       ? m.logical_launch_arg_s * 0.25
                                       : m.logical_launch_arg_s;
            util[0] += L.num_args * per_arg;
            result.stages.issue_s += L.num_args * per_arg;
            result.runtime_ops += static_cast<uint64_t>(L.num_args);
          }
        } else {
          const double cost = static_cast<double>(L.tasks) *
                              (m.issue_task_s + L.num_args * logical_task_s);
          util[0] += cost;
          result.stages.issue_s += cost;
          result.runtime_ops += static_cast<uint64_t>(L.tasks);
        }
        if (check_s > 0) result.check_seconds += check_s;
      }

      // ---- Stage 3: distribution ----
      if (config.dcr) {
        for (uint32_t n = 0; n < N; ++n) {
          const int64_t local = local_task_count(L.tasks, N, (n + L.shard_offset) % N);
          if (config.idx) {
            // Sharding functor: cold evaluation over the whole domain once,
            // memoized lookups afterwards; then local expansion.
            const double cost =
                (first_iter ? static_cast<double>(L.tasks) * m.shard_eval_s
                            : static_cast<double>(local) * m.shard_memo_s) +
                static_cast<double>(local) * m.expand_task_s;
            util[n] += cost;
            result.stages.distribution_s += cost;
          }
          arrival[n] = util[n];
        }
      } else if (config.idx && (!config.tracing || config.bulk_tracing)) {
        // Broadcast tree of fixed-size slice descriptors: O(log N) depth,
        // N-1 messages total. Recursive binary split of the node range.
        arrival.assign(N, 0.0);
        arrival[0] = util[0];
        auto broadcast = [&](auto&& self, uint32_t lo, uint32_t hi, double t) -> void {
          if (lo == hi) return;
          const uint32_t mid = lo + (hi - lo + 1) / 2;  // right half starts here
          const double send = std::max(t, nic[lo]) + m.msg_cpu_s;
          nic[lo] = send;
          const double arrive = send + m.msg_time(m.slice_msg_bytes);
          arrival[mid] = std::max(arrival[mid], arrive);
          ++result.messages;
          self(self, mid, hi, arrive);
          self(self, lo, mid - 1, send);
        };
        broadcast(broadcast, 0, N - 1, util[0]);
        for (uint32_t n = 0; n < N; ++n) {
          const int64_t local = local_task_count(L.tasks, N, (n + L.shard_offset) % N);
          const double cost = m.msg_cpu_s * (n != 0 ? 1.0 : 0.0) +
                              static_cast<double>(local) * m.expand_task_s;
          util[n] = std::max(util[n], arrival[n]) + cost;
          result.stages.distribution_s += cost;
          arrival[n] = util[n];
        }
      } else {
        // Individual task sends from node 0 (No-IDX, or IDX whose launch
        // tracing already expanded): remote tasks stream out serially, and
        // the owner node coordinates the mapping of every task.
        double cursor = util[0] + static_cast<double>(L.tasks) * m.central_map_task_s;
        result.stages.distribution_s += static_cast<double>(L.tasks) * m.central_map_task_s;
        int64_t remote = 0;
        for (uint32_t n = 0; n < N; ++n) {
          const int64_t local = local_task_count(L.tasks, N, (n + L.shard_offset) % N);
          if (n == 0) {
            arrival[0] = util[0];
            continue;
          }
          cursor += static_cast<double>(local) *
                    (m.msg_cpu_s + m.task_msg_bytes / m.net_bandwidth_Bps);
          result.stages.distribution_s += static_cast<double>(local) * m.msg_cpu_s;
          arrival[n] = cursor + m.net_latency_s;
          remote += local;
        }
        util[0] = cursor;  // per-message CPU serializes on node 0
        result.messages += static_cast<uint64_t>(remote);
        for (uint32_t n = 1; n < N; ++n) util[n] = std::max(util[n], arrival[n]);
      }

      // ---- Stage 4: physical analysis, then execution ----
      const double phys_per_task =
          m.physical_task_log_s * log2_colors(L.tasks) * physical_scale;
      // Materialize all referenced chains first: chain_of may insert into
      // the map and would otherwise invalidate earlier references.
      for (int c : L.also_after_chains) chain_of(c);
      chain_of(L.chain);
      std::vector<const std::vector<double>*> extra_chains;
      for (int c : L.also_after_chains) extra_chains.push_back(&chain_done.at(c));
      std::vector<double>& prev_done = chain_done.at(L.chain);
      std::vector<double> next_done(N, 0.0);
      for (uint32_t n = 0; n < N; ++n) {
        const int64_t local = local_task_count(L.tasks, N, (n + L.shard_offset) % N);
        util[n] = std::max(util[n], arrival[n]) + m.launch_overhead_s +
                  static_cast<double>(local) * phys_per_task;
        result.stages.physical_s +=
            m.launch_overhead_s + static_cast<double>(local) * phys_per_task;
        result.runtime_ops += static_cast<uint64_t>(local);

        double inputs = 0.0;
        if (L.depends_on_previous) {
          // Producers: this node plus its ring neighbors (halo exchange).
          inputs = prev_done[n];
          if (n > 0) inputs = std::max(inputs, prev_done[n - 1]);
          if (n + 1 < N) inputs = std::max(inputs, prev_done[n + 1]);
          if (L.remote_bytes_per_task > 0 && N > 1)
            inputs += m.msg_time(L.remote_bytes_per_task * static_cast<double>(local));
        }
        for (const auto* chain : extra_chains) inputs = std::max(inputs, (*chain)[n]);

        // Dependents observe completion only after the event chain
        // propagates (log-depth across the machine); the GPU itself is
        // free earlier.
        const double completion_lag =
            N > 1 ? m.collective_per_launch_s * log2_colors(N) : 0.0;
        if (local > 0) {
          const double jitter =
              1.0 + m.kernel_noise * noise_draw(n, iter, li, /*seed=*/0xC0FFEE);
          const double kernel = static_cast<double>(local) * L.kernel_s * jitter;
          result.stages.kernel_s += kernel;
          const double start = std::max({gpu[n], util[n], inputs});
          gpu[n] = start + kernel;
          next_done[n] = gpu[n] + completion_lag;
        } else {
          // No work here: the node's GPU is untouched and the dependence
          // frontier simply flows through from this launch's inputs.
          next_done[n] = inputs + completion_lag;
        }
      }
      prev_done = next_done;
    }

    if (iter == app.warmup - 1) {
      warmup_end = *std::max_element(gpu.begin(), gpu.end());
    }
  }

  const double end = *std::max_element(gpu.begin(), gpu.end());
  if (app.warmup == 0) warmup_end = 0.0;
  result.total_seconds = end;
  result.seconds_per_iteration = (end - warmup_end) / app.iterations;
  result.util_busy_max_s = *std::max_element(util.begin(), util.end());
  result.gpu_busy_max_s = end;
  return result;
}

}  // namespace idxl::sim
