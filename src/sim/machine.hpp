#pragma once

#include <cstdint>

namespace idxl::sim {

/// Cost model of one node of the simulated machine, loosely calibrated to
/// the Piz Daint generation of systems (Xeon E5-2690v3 + P100 + Aries) and
/// to published Legion runtime overheads (a few microseconds per runtime
/// operation; see Bauer et al. [6] and Lee et al. [20]).
///
/// These constants feed the pipeline simulator in pipeline_sim.*. They are
/// *per-operation* costs; every scaling effect in the reproduced figures
/// emerges from how many operations each configuration performs where —
/// never from per-configuration fudge factors.
struct MachineParams {
  // --- runtime processor ("utility core") costs, seconds/op ---
  double issue_task_s = 4.0e-6;        ///< issue one individual task
  double issue_launch_s = 8.0e-6;      ///< issue one index launch (bulk call)
  double expand_task_s = 0.6e-6;       ///< expand one point task from a launch
  double logical_task_s = 2.5e-6;      ///< per-task logical analysis, per region arg
  double logical_task_traced_s = 0.4e-6;  ///< same, replayed from a trace
  double logical_launch_arg_s = 1.5e-6;   ///< whole-partition analysis, per region arg
  double physical_task_log_s = 0.4e-6;    ///< physical analysis per task per log2(|P|)
  double shard_eval_s = 0.15e-6;       ///< sharding functor evaluation (cold)
  double shard_memo_s = 0.03e-6;       ///< sharding functor lookup (memoized)
  double central_map_task_s = 2.5e-6;  ///< non-DCR: per-task mapping coordination
                                       ///< on the owner node
  /// Fixed per-(launch, node) meta-work: instance management, event
  /// triggering, mapper callbacks. Irrelevant while kernels are long, but
  /// the term that bends strong scaling once per-task kernel time shrinks
  /// toward the runtime's per-operation latency.
  double launch_overhead_s = 150e-6;

  /// How far (in seconds of its own GPU timeline) a node's runtime
  /// processor may run ahead of execution. Real runtimes bound outstanding
  /// operations (mapper windows, meta-task queues); an unbounded pipeline
  /// would hide arbitrarily large per-task analysis costs, which is neither
  /// realistic nor what the paper measures.
  double runahead_window_s = 0.5e-3;

  /// Completion-propagation latency per launch: the event chain that tells
  /// dependent tasks on other nodes that their producers finished travels
  /// through a log-depth reduction/broadcast. Charged on the dependence
  /// path (not GPU occupancy), scaled by log2(nodes).
  double collective_per_launch_s = 120e-6;

  // --- hybrid-analysis dynamic check (measured in Table 2/3 benches) ---
  double check_point_s = 1.5e-9;       ///< per launch-domain point
  double check_bit_s = 0.125e-9;       ///< per bitmask bit initialized

  // --- network (Aries-class) ---
  double net_latency_s = 1.5e-6;
  double net_bandwidth_Bps = 10.0e9;
  double msg_cpu_s = 0.4e-6;           ///< per-message sender CPU overhead
  double slice_msg_bytes = 256;        ///< index-launch slice descriptor
  double task_msg_bytes = 640;         ///< individual task descriptor

  // --- execution-time variability ---
  /// Per-(node, task, iteration) multiplicative kernel jitter drawn
  /// deterministically in [0, kernel_noise]; models OS noise and load
  /// imbalance whose max-over-nodes tail is what erodes parallel
  /// efficiency at scale on real machines.
  double kernel_noise = 0.12;

  double msg_time(double bytes) const {
    return net_latency_s + bytes / net_bandwidth_Bps;
  }
};

}  // namespace idxl::sim
