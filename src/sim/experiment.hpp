#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/pipeline_sim.hpp"

namespace idxl::sim {

/// One curve of a scaling figure: a label plus (nodes, value) points.
struct Series {
  std::string label;
  std::vector<std::pair<uint32_t, double>> points;
};

/// Run an (app-builder × configs × node-counts) sweep, as in §6.2. The
/// app builder receives the node count so weak-scaling workloads can grow
/// with the machine; `metric` converts a simulation result into the
/// figure's y-value (throughput, throughput/node, iterations/s, ...).
/// Per the paper's protocol each data point averages `repeats` runs (the
/// simulator is deterministic given a seed, so repeats vary the jitter
/// stream via the iteration count offset; 1 is fine for smoke tests).
std::vector<Series> run_scaling_experiment(
    const std::function<AppSpec(uint32_t nodes)>& app_builder,
    const std::vector<SimConfig>& configs, const std::vector<uint32_t>& node_counts,
    const std::function<double(const SimResult&, uint32_t nodes)>& metric);

/// Print a figure as aligned columns: one row per node count, one column
/// per configuration. `unit` annotates the header.
void print_figure(const std::string& title, const std::string& unit,
                  const std::vector<uint32_t>& node_counts,
                  const std::vector<Series>& series);

/// Standard node sweeps used by the paper's figures.
std::vector<uint32_t> nodes_up_to(uint32_t max_nodes);  // 1,2,4,...,max

/// The four §6.2 configurations (DCR × IDX), in the paper's legend order.
std::vector<SimConfig> four_configs(bool tracing = true, bool dynamic_checks = true);

}  // namespace idxl::sim
