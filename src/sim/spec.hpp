#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine.hpp"

namespace idxl::sim {

/// One index launch (or, in No-IDX configurations, the equivalent group of
/// individual launches) inside a simulated iteration.
struct LaunchSpec {
  std::string name;
  /// Number of tasks in the launch (the |D| of §3).
  int64_t tasks = 0;
  /// Number of region requirements per task.
  int num_args = 2;
  /// GPU seconds per task (kernel cost).
  double kernel_s = 0;
  /// Bytes each task must receive from *remote* producers of the previous
  /// launch before it can start (halo exchange volume).
  double remote_bytes_per_task = 0;
  /// True when this launch uses a projection functor the static analyzer
  /// cannot discharge, so the hybrid analysis runs the dynamic check
  /// (cost O(tasks) on every issuing node when checks are enabled).
  bool nontrivial_functor = false;
  /// Bitmask bits the dynamic check initializes (≈ partition color count).
  int64_t check_bits = 0;
  /// When true, this launch's tasks depend on the previous launch *of the
  /// same chain* (plus ring neighbors, for halo exchange).
  bool depends_on_previous = true;
  /// Dependence chain this launch belongs to. Launches in different chains
  /// never gate each other (they share only the GPU). The DOM sweeps use
  /// one chain per direction so the 8 directions overlap, while wavefronts
  /// within a direction serialize — the algorithm's real structure.
  int chain = 0;
  /// Chains this launch additionally waits on (last completion), e.g. the
  /// first DOM wavefront waits for the fluid chain, and the radiation
  /// feedback joins all eight sweep chains.
  std::vector<int> also_after_chains;
  /// Rotation applied to the task->node assignment. Sweep wavefront w sets
  /// this to w so successive wavefronts land on successive node groups (the
  /// blocks' actual owners), letting the sweep pipeline instead of
  /// re-serializing every wavefront on the same nodes.
  uint32_t shard_offset = 0;
};

/// A simulated application: the launch sequence of one timestep, replayed
/// for `iterations` timed iterations after `warmup` untimed ones (warmup
/// captures traces and populates the sharding memo-cache, as on the real
/// runtime).
struct AppSpec {
  std::string name;
  std::vector<LaunchSpec> iteration;
  int warmup = 2;
  int iterations = 10;
};

/// One of the paper's experiment configurations (the DCR×IDX product of
/// §6.2, plus the tracing and dynamic-check toggles of Figs. 6 and 10).
struct SimConfig {
  uint32_t nodes = 1;
  bool dcr = true;
  bool idx = true;
  bool tracing = true;
  bool dynamic_checks = true;
  /// The paper's stated future work (§6.2.1): tracing that memoizes at the
  /// granularity of whole index launches instead of individual tasks. With
  /// this set, tracing no longer forces expansion before distribution in
  /// the No-DCR pipeline, so index launches keep their asymptotic benefit
  /// even without DCR. Only meaningful when `tracing` is also set.
  bool bulk_tracing = false;
  MachineParams machine;

  std::string label() const {
    std::string s = dcr ? "DCR" : "No DCR";
    s += idx ? ", IDX" : ", No IDX";
    return s;
  }
};

/// Per-pipeline-stage busy time (seconds), aggregated over every node and
/// iteration — the Fig. 2/3 stages made quantitative.
struct StageBreakdown {
  double issue_s = 0;         ///< task issuance + logical analysis
  double check_s = 0;         ///< hybrid-analysis dynamic checks
  double distribution_s = 0;  ///< sharding/slicing/expansion + message CPU
  double physical_s = 0;      ///< physical analysis + per-launch meta-work
  double kernel_s = 0;        ///< GPU execution

  double runtime_total() const { return issue_s + check_s + distribution_s + physical_s; }
};

/// Simulation output for one (app, config) pair.
struct SimResult {
  double seconds_per_iteration = 0;   ///< steady-state, averaged over timed iters
  double total_seconds = 0;
  // Aggregate busy seconds across timed iterations, for breakdown tests
  // and the ablation benches.
  double util_busy_max_s = 0;         ///< max over nodes of runtime-processor busy time
  double gpu_busy_max_s = 0;
  double check_seconds = 0;           ///< dynamic-check time on the critical path node
  uint64_t messages = 0;              ///< distribution messages sent
  uint64_t runtime_ops = 0;           ///< issuance + analysis operations (all nodes)
  StageBreakdown stages;              ///< where the busy time went (all nodes summed)
};

}  // namespace idxl::sim
