#pragma once

#include "sim/spec.hpp"

namespace idxl::sim {

/// Timeline simulator of the Legion runtime pipeline of §5 on an N-node
/// machine.
///
/// Each node owns two serial resources — a runtime ("utility") processor
/// and a GPU — plus a NIC for distribution messages. For every launch of
/// every iteration the simulator advances these resources through the four
/// §5 pipeline stages exactly as the configured runtime would:
///
///   issuance      IDX: one bulk call; No-IDX: |D| calls.
///                 DCR: replicated on every node; No-DCR: node 0 only.
///   logical       IDX: whole-partition, O(args); No-IDX: per task.
///   distribution  DCR: memoized sharding functor, no messages;
///                 No-DCR+IDX: O(log N) broadcast tree of fixed-size slices;
///                 No-DCR+No-IDX: per-task messages serialized on node 0.
///                 Tracing (Lee et al. [20]) works on individual tasks, so
///                 with No-DCR it forces expansion *before* distribution,
///                 re-injecting point tasks into the stream (§6.2.1) — the
///                 Fig. 5/6 interference effect.
///   physical      per local task, O(log |P|) each, on the owning node.
///
/// Execution then occupies the GPU for the local tasks' kernel time
/// (with deterministic per-(node,launch,iteration) jitter standing in for
/// OS noise/load imbalance), gated on the previous launch's producers
/// (own + ring neighbors) and the halo-exchange transfer time.
///
/// Everything measured in the reproduced figures — who wins, where curves
/// diverge, how efficiency decays — emerges from these mechanics; there are
/// no per-configuration fudge terms.
SimResult simulate(const AppSpec& app, const SimConfig& config);

/// Tasks owned by node `n` under balanced block distribution.
int64_t local_task_count(int64_t tasks, uint32_t nodes, uint32_t n);

}  // namespace idxl::sim
