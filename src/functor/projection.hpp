#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "functor/expr.hpp"
#include "region/domain.hpp"

namespace idxl {

/// A projection functor (§3): a pure function from a point in the launch
/// domain to a color of a partition, selecting the sub-collection an
/// individual task in an index launch receives.
///
/// Two flavors:
///  * symbolic — a tuple of Expr trees, one per output dimension. Fully
///    analyzable by the static classifier and fast to evaluate via
///    CompiledExpr.
///  * opaque — an arbitrary std::function. Maximum flexibility (the paper's
///    `q[f(i)]` with opaque f); always requires the dynamic check.
class ProjectionFunctor {
 public:
  /// The identity functor of dimension `dim` (the trivially safe case).
  static ProjectionFunctor identity(int dim);

  /// Symbolic functor from per-output-dimension expressions.
  static ProjectionFunctor symbolic(std::vector<ExprPtr> exprs, std::string name = "");

  /// 1-D affine convenience: i -> a*i + b.
  static ProjectionFunctor affine1d(int64_t a, int64_t b);

  /// 1-D modular convenience: i -> (i + k) mod n.
  static ProjectionFunctor modular1d(int64_t k, int64_t n);

  /// Opaque functor; `out_dim` is the dimensionality of produced colors.
  static ProjectionFunctor opaque(std::function<Point(const Point&)> fn, int out_dim,
                                  std::string name = "<opaque>");

  /// Evaluate at a launch-domain point.
  Point operator()(const Point& p) const;

  int output_dim() const { return out_dim_; }
  bool is_symbolic() const { return !exprs_.empty(); }
  const std::vector<ExprPtr>& exprs() const { return exprs_; }
  const std::string& name() const { return name_; }

  /// True when both are symbolic with structurally identical expressions.
  /// (Opaque functors are never known-equal.)
  bool definitely_equal(const ProjectionFunctor& other) const;

  /// Fast repeated evaluation for the dynamic checker: evaluates at `p` and
  /// writes coordinates into `out[0..out_dim)`.
  void eval_into(const Point& p, int64_t* out) const;

  /// Build the compiled form (idempotent). Called by the dynamic checker
  /// before its evaluation loop so the per-point cost is a bytecode scan,
  /// not a pointer-chasing tree walk.
  void ensure_compiled() const;

  std::string to_string() const;

 private:
  ProjectionFunctor() = default;

  int out_dim_ = 0;
  std::vector<ExprPtr> exprs_;                       // symbolic form (may be empty)
  std::function<Point(const Point&)> fn_;            // opaque form
  std::string name_;
  mutable std::vector<CompiledExpr> compiled_;       // lazy, symbolic only
};

}  // namespace idxl
