#include "functor/expr.hpp"

#include <algorithm>

namespace idxl {

namespace {

ExprPtr make_node(ExprKind kind, int64_t value, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  e->value = value;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

int64_t safe_div(int64_t a, int64_t b) {
  IDXL_ASSERT_MSG(b != 0, "projection functor division by zero");
  return a / b;
}

int64_t safe_mod(int64_t a, int64_t b) {
  IDXL_ASSERT_MSG(b != 0, "projection functor modulo by zero");
  return a % b;
}

}  // namespace

ExprPtr make_const(int64_t v) { return make_node(ExprKind::kConst, v, nullptr, nullptr); }

ExprPtr make_coord(int axis) {
  IDXL_REQUIRE(axis >= 0 && axis < kMaxDim, "coordinate axis out of range");
  return make_node(ExprKind::kCoord, axis, nullptr, nullptr);
}

ExprPtr make_add(ExprPtr a, ExprPtr b) {
  return make_node(ExprKind::kAdd, 0, std::move(a), std::move(b));
}
ExprPtr make_sub(ExprPtr a, ExprPtr b) {
  return make_node(ExprKind::kSub, 0, std::move(a), std::move(b));
}
ExprPtr make_mul(ExprPtr a, ExprPtr b) {
  return make_node(ExprKind::kMul, 0, std::move(a), std::move(b));
}
ExprPtr make_div(ExprPtr a, ExprPtr b) {
  return make_node(ExprKind::kDiv, 0, std::move(a), std::move(b));
}
ExprPtr make_mod(ExprPtr a, ExprPtr b) {
  return make_node(ExprKind::kMod, 0, std::move(a), std::move(b));
}
ExprPtr make_neg(ExprPtr a) {
  return make_node(ExprKind::kNeg, 0, std::move(a), nullptr);
}

int64_t Expr::eval(const Point& p) const {
  switch (kind) {
    case ExprKind::kConst: return value;
    case ExprKind::kCoord:
      IDXL_ASSERT_MSG(value < p.dim, "functor references coordinate beyond launch dim");
      return p[static_cast<int>(value)];
    case ExprKind::kAdd: return lhs->eval(p) + rhs->eval(p);
    case ExprKind::kSub: return lhs->eval(p) - rhs->eval(p);
    case ExprKind::kMul: return lhs->eval(p) * rhs->eval(p);
    case ExprKind::kDiv: return safe_div(lhs->eval(p), rhs->eval(p));
    case ExprKind::kMod: return safe_mod(lhs->eval(p), rhs->eval(p));
    case ExprKind::kNeg: return -lhs->eval(p);
  }
  IDXL_ASSERT(false);
  return 0;
}

std::string Expr::to_string() const {
  switch (kind) {
    case ExprKind::kConst: return std::to_string(value);
    case ExprKind::kCoord: return "i" + std::to_string(value);
    case ExprKind::kAdd: return "(" + lhs->to_string() + " + " + rhs->to_string() + ")";
    case ExprKind::kSub: return "(" + lhs->to_string() + " - " + rhs->to_string() + ")";
    case ExprKind::kMul: return "(" + lhs->to_string() + " * " + rhs->to_string() + ")";
    case ExprKind::kDiv: return "(" + lhs->to_string() + " / " + rhs->to_string() + ")";
    case ExprKind::kMod: return "(" + lhs->to_string() + " % " + rhs->to_string() + ")";
    case ExprKind::kNeg: return "(-" + lhs->to_string() + ")";
  }
  return "?";
}

int Expr::max_coord() const {
  switch (kind) {
    case ExprKind::kConst: return -1;
    case ExprKind::kCoord: return static_cast<int>(value);
    case ExprKind::kNeg: return lhs->max_coord();
    default:
      return std::max(lhs ? lhs->max_coord() : -1, rhs ? rhs->max_coord() : -1);
  }
}

bool expr_equal(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case ExprKind::kConst:
    case ExprKind::kCoord:
      return a.value == b.value;
    case ExprKind::kNeg:
      return expr_equal(*a.lhs, *b.lhs);
    default:
      return expr_equal(*a.lhs, *b.lhs) && expr_equal(*a.rhs, *b.rhs);
  }
}

CompiledExpr::CompiledExpr(const Expr& root) {
  // Post-order flattening; evaluation becomes a linear scan with an
  // explicit operand stack.
  std::size_t depth = 0, max_depth = 0;
  auto flatten = [&](auto&& self, const Expr& e) -> void {
    switch (e.kind) {
      case ExprKind::kConst:
      case ExprKind::kCoord:
        ops_.push_back({e.kind, e.value});
        max_depth = std::max(max_depth, ++depth);
        return;
      case ExprKind::kNeg:
        self(self, *e.lhs);
        ops_.push_back({e.kind, 0});
        return;
      default:
        self(self, *e.lhs);
        self(self, *e.rhs);
        ops_.push_back({e.kind, 0});
        --depth;  // two operands collapse into one
        return;
    }
  };
  flatten(flatten, root);
  stack_.resize(max_depth);
}

int64_t CompiledExpr::eval(const Point& p) const {
  int64_t* sp = stack_.data();
  for (const Op& op : ops_) {
    switch (op.kind) {
      case ExprKind::kConst: *sp++ = op.value; break;
      case ExprKind::kCoord: *sp++ = p.c[static_cast<std::size_t>(op.value)]; break;
      case ExprKind::kAdd: sp[-2] = sp[-2] + sp[-1]; --sp; break;
      case ExprKind::kSub: sp[-2] = sp[-2] - sp[-1]; --sp; break;
      case ExprKind::kMul: sp[-2] = sp[-2] * sp[-1]; --sp; break;
      case ExprKind::kDiv: sp[-2] = safe_div(sp[-2], sp[-1]); --sp; break;
      case ExprKind::kMod: sp[-2] = safe_mod(sp[-2], sp[-1]); --sp; break;
      case ExprKind::kNeg: sp[-1] = -sp[-1]; break;
    }
  }
  IDXL_ASSERT(sp == stack_.data() + 1);
  return sp[-1];
}

}  // namespace idxl
