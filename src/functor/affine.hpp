#pragma once

#include <array>
#include <optional>

#include "functor/projection.hpp"

namespace idxl {

/// An affine map i ↦ A·i + b extracted from a symbolic projection functor.
/// This is the shape the paper's static analysis recognizes ("constant,
/// identity, or the slightly more general affine case", §4); everything
/// else falls through to the dynamic check.
struct AffineMap {
  int in_dim = 0;   // launch domain dimensionality
  int out_dim = 0;  // color dimensionality
  // a[r][c] is the coefficient of launch coordinate c in output row r.
  std::array<std::array<int64_t, kMaxDim>, kMaxDim> a{};
  std::array<int64_t, kMaxDim> b{};

  Point apply(const Point& p) const;

  bool is_identity() const;

  /// All coefficients zero — the functor degenerates to a constant.
  bool is_constant() const;

  /// Column rank of A over the rationals. Full column rank (== in_dim)
  /// implies the map is injective on all of Z^in_dim, hence on any launch
  /// domain — the soundness core of the static classifier.
  int column_rank() const;

  /// A small nonzero integer vector v with A·v = 0, if one exists with
  /// coordinates in [-kNullSearchRadius, kNullSearchRadius]. Two launch
  /// points differing by v collide, which is how the classifier proves
  /// *non*-injectivity of degenerate affine maps.
  std::optional<Point> small_null_vector() const;

  static constexpr int64_t kNullSearchRadius = 4;
};

/// Try to view `f` as an affine map over an `in_dim`-dimensional launch
/// domain. Fails (nullopt) for opaque functors and for symbolic functors
/// containing mul-of-coords, div, or mod.
std::optional<AffineMap> extract_affine_map(const ProjectionFunctor& f, int in_dim);

}  // namespace idxl
