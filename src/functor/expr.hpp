#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "region/point.hpp"

namespace idxl {

/// Scalar integer expression over the coordinates of a launch-domain point.
/// Projection functors (§3) are tuples of these, one per output dimension.
///
/// Keeping functors symbolic — rather than opaque callables — is what lets
/// the *static* half of the paper's hybrid analysis work: the classifier
/// pattern-matches this IR for constant / identity / affine shapes. Opaque
/// callables are still supported (ProjectionFunctor::opaque) and simply
/// classify as "unknown", falling through to the dynamic check.
enum class ExprKind : uint8_t {
  kConst,  ///< integer literal
  kCoord,  ///< i-th coordinate of the launch index
  kAdd,
  kSub,
  kMul,
  kDiv,  ///< truncating division (C++ semantics)
  kMod,  ///< C++ remainder semantics; the paper's `(i+k) mod N` idiom
  kNeg,
};

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  ExprKind kind;
  int64_t value = 0;  // kConst: the literal; kCoord: the coordinate index
  ExprPtr lhs, rhs;

  int64_t eval(const Point& p) const;
  std::string to_string() const;

  /// Largest coordinate index referenced, or -1 if none.
  int max_coord() const;
};

ExprPtr make_const(int64_t v);
ExprPtr make_coord(int axis);
ExprPtr make_add(ExprPtr a, ExprPtr b);
ExprPtr make_sub(ExprPtr a, ExprPtr b);
ExprPtr make_mul(ExprPtr a, ExprPtr b);
ExprPtr make_div(ExprPtr a, ExprPtr b);
ExprPtr make_mod(ExprPtr a, ExprPtr b);
ExprPtr make_neg(ExprPtr a);

/// Structural equality (used by the static cross-check to recognize
/// identical functors).
bool expr_equal(const Expr& a, const Expr& b);

/// Flattened postfix program for fast repeated evaluation. The tree walk
/// costs a pointer chase per node; the dynamic check evaluates the functor
/// |D| times (up to 1e6 in Table 2), so we "compile" it once — the
/// interpreter analogue of the specialized loops Regent generates.
class CompiledExpr {
 public:
  explicit CompiledExpr(const Expr& root);
  int64_t eval(const Point& p) const;

 private:
  struct Op {
    ExprKind kind;
    int64_t value;
  };
  std::vector<Op> ops_;  // postfix order
  mutable std::vector<int64_t> stack_;
};

}  // namespace idxl
