#include "functor/projection.hpp"

namespace idxl {

ProjectionFunctor ProjectionFunctor::identity(int dim) {
  IDXL_REQUIRE(dim >= 1 && dim <= kMaxDim, "identity functor dimension out of range");
  std::vector<ExprPtr> exprs;
  exprs.reserve(static_cast<std::size_t>(dim));
  for (int d = 0; d < dim; ++d) exprs.push_back(make_coord(d));
  return symbolic(std::move(exprs), "identity");
}

ProjectionFunctor ProjectionFunctor::symbolic(std::vector<ExprPtr> exprs,
                                              std::string name) {
  IDXL_REQUIRE(!exprs.empty() && exprs.size() <= kMaxDim,
               "symbolic functor needs 1..kMaxDim output expressions");
  ProjectionFunctor f;
  f.out_dim_ = static_cast<int>(exprs.size());
  f.exprs_ = std::move(exprs);
  if (name.empty()) {
    name = "[";
    for (std::size_t i = 0; i < f.exprs_.size(); ++i) {
      if (i) name += ", ";
      name += f.exprs_[i]->to_string();
    }
    name += "]";
  }
  f.name_ = std::move(name);
  return f;
}

ProjectionFunctor ProjectionFunctor::affine1d(int64_t a, int64_t b) {
  return symbolic({make_add(make_mul(make_const(a), make_coord(0)), make_const(b))},
                  std::to_string(a) + "*i + " + std::to_string(b));
}

ProjectionFunctor ProjectionFunctor::modular1d(int64_t k, int64_t n) {
  return symbolic({make_mod(make_add(make_coord(0), make_const(k)), make_const(n))},
                  "(i + " + std::to_string(k) + ") mod " + std::to_string(n));
}

ProjectionFunctor ProjectionFunctor::opaque(std::function<Point(const Point&)> fn,
                                            int out_dim, std::string name) {
  IDXL_REQUIRE(out_dim >= 1 && out_dim <= kMaxDim, "opaque functor dimension out of range");
  IDXL_REQUIRE(static_cast<bool>(fn), "opaque functor requires a callable");
  ProjectionFunctor f;
  f.out_dim_ = out_dim;
  f.fn_ = std::move(fn);
  f.name_ = std::move(name);
  return f;
}

Point ProjectionFunctor::operator()(const Point& p) const {
  if (!is_symbolic()) {
    Point r = fn_(p);
    IDXL_ASSERT_MSG(r.dim == out_dim_, "opaque functor produced wrong dimensionality");
    return r;
  }
  Point r;
  r.dim = out_dim_;
  for (int d = 0; d < out_dim_; ++d) r[d] = exprs_[static_cast<std::size_t>(d)]->eval(p);
  return r;
}

bool ProjectionFunctor::definitely_equal(const ProjectionFunctor& other) const {
  if (!is_symbolic() || !other.is_symbolic()) return false;
  if (out_dim_ != other.out_dim_) return false;
  for (int d = 0; d < out_dim_; ++d)
    if (!expr_equal(*exprs_[static_cast<std::size_t>(d)],
                    *other.exprs_[static_cast<std::size_t>(d)]))
      return false;
  return true;
}

void ProjectionFunctor::ensure_compiled() const {
  if (!is_symbolic() || !compiled_.empty()) return;
  compiled_.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) compiled_.emplace_back(*e);
}

void ProjectionFunctor::eval_into(const Point& p, int64_t* out) const {
  if (is_symbolic() && !compiled_.empty()) {
    for (int d = 0; d < out_dim_; ++d)
      out[d] = compiled_[static_cast<std::size_t>(d)].eval(p);
    return;
  }
  const Point r = (*this)(p);
  for (int d = 0; d < out_dim_; ++d) out[d] = r[d];
}

std::string ProjectionFunctor::to_string() const { return name_; }

}  // namespace idxl
