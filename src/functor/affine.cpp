#include "functor/affine.hpp"

namespace idxl {

namespace {

/// Linear form over launch coordinates: sum of coeff[j]*i_j plus offset.
struct LinearForm {
  std::array<int64_t, kMaxDim> coeff{};
  int64_t offset = 0;
};

/// Recursively match an expression as a linear form. Returns nullopt on any
/// non-affine construct.
std::optional<LinearForm> match_linear(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kConst: {
      LinearForm f;
      f.offset = e.value;
      return f;
    }
    case ExprKind::kCoord: {
      LinearForm f;
      f.coeff[static_cast<std::size_t>(e.value)] = 1;
      return f;
    }
    case ExprKind::kNeg: {
      auto f = match_linear(*e.lhs);
      if (!f) return std::nullopt;
      for (auto& c : f->coeff) c = -c;
      f->offset = -f->offset;
      return f;
    }
    case ExprKind::kAdd:
    case ExprKind::kSub: {
      auto l = match_linear(*e.lhs);
      auto r = match_linear(*e.rhs);
      if (!l || !r) return std::nullopt;
      const int64_t sign = e.kind == ExprKind::kAdd ? 1 : -1;
      for (std::size_t j = 0; j < kMaxDim; ++j) l->coeff[j] += sign * r->coeff[j];
      l->offset += sign * r->offset;
      return l;
    }
    case ExprKind::kMul: {
      auto l = match_linear(*e.lhs);
      auto r = match_linear(*e.rhs);
      if (!l || !r) return std::nullopt;
      const bool l_const =
          std::all_of(l->coeff.begin(), l->coeff.end(), [](int64_t c) { return c == 0; });
      const bool r_const =
          std::all_of(r->coeff.begin(), r->coeff.end(), [](int64_t c) { return c == 0; });
      if (!l_const && !r_const) return std::nullopt;  // coord * coord: quadratic
      const LinearForm& var = l_const ? *r : *l;
      const int64_t k = l_const ? l->offset : r->offset;
      LinearForm f;
      for (std::size_t j = 0; j < kMaxDim; ++j) f.coeff[j] = var.coeff[j] * k;
      f.offset = var.offset * k;
      return f;
    }
    case ExprKind::kDiv:
    case ExprKind::kMod:
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace

Point AffineMap::apply(const Point& p) const {
  IDXL_ASSERT(p.dim == in_dim);
  Point r;
  r.dim = out_dim;
  for (int i = 0; i < out_dim; ++i) {
    int64_t v = b[static_cast<std::size_t>(i)];
    for (int j = 0; j < in_dim; ++j)
      v += a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] * p[j];
    r[i] = v;
  }
  return r;
}

bool AffineMap::is_identity() const {
  if (in_dim != out_dim) return false;
  for (int i = 0; i < out_dim; ++i) {
    if (b[static_cast<std::size_t>(i)] != 0) return false;
    for (int j = 0; j < in_dim; ++j)
      if (a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] != (i == j ? 1 : 0))
        return false;
  }
  return true;
}

bool AffineMap::is_constant() const {
  for (int i = 0; i < out_dim; ++i)
    for (int j = 0; j < in_dim; ++j)
      if (a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] != 0) return false;
  return true;
}

int AffineMap::column_rank() const {
  // Fraction-free Gaussian elimination in 128-bit integers; dims are <= 4
  // and coefficients are application-scale, so no overflow in practice.
  __int128 m[kMaxDim][kMaxDim];
  for (int i = 0; i < out_dim; ++i)
    for (int j = 0; j < in_dim; ++j)
      m[i][j] = a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];

  int rank = 0;
  for (int col = 0; col < in_dim && rank < out_dim; ++col) {
    int pivot = -1;
    for (int row = rank; row < out_dim; ++row)
      if (m[row][col] != 0) {
        pivot = row;
        break;
      }
    if (pivot < 0) continue;
    for (int j = 0; j < in_dim; ++j) std::swap(m[pivot][j], m[rank][j]);
    for (int row = rank + 1; row < out_dim; ++row) {
      const __int128 factor = m[row][col];
      if (factor == 0) continue;
      const __int128 p = m[rank][col];
      for (int j = 0; j < in_dim; ++j) m[row][j] = m[row][j] * p - m[rank][j] * factor;
    }
    ++rank;
  }
  return rank;
}

std::optional<Point> AffineMap::small_null_vector() const {
  // Exhaustive search over a small box in increasing L-infinity norm:
  // in_dim <= 4 and radius 4 give at most 9^4 candidates — trivially cheap,
  // and sufficient for the degenerate affine functors that arise in
  // practice (zero columns, repeated columns, proportional columns with
  // small ratios). Smallest-norm-first matters: short kernel vectors are
  // the ones that can connect two points of a launch domain and thereby
  // witness non-injectivity.
  for (int64_t radius = 1; radius <= kNullSearchRadius; ++radius) {
    Rect box(Point::filled(in_dim, -radius), Point::filled(in_dim, radius));
    for (const Point& cand : box) {
      int64_t norm = 0;
      for (int j = 0; j < in_dim; ++j) norm = std::max(norm, std::abs(cand[j]));
      if (norm != radius) continue;  // interior already searched
      bool in_kernel = true;
      for (int i = 0; i < out_dim && in_kernel; ++i) {
        int64_t dot = 0;
        for (int j = 0; j < in_dim; ++j)
          dot += a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] * cand[j];
        in_kernel = dot == 0;
      }
      if (in_kernel) return cand;
    }
  }
  return std::nullopt;
}

std::optional<AffineMap> extract_affine_map(const ProjectionFunctor& f, int in_dim) {
  if (!f.is_symbolic()) return std::nullopt;
  IDXL_REQUIRE(in_dim >= 1 && in_dim <= kMaxDim, "bad launch dimensionality");

  AffineMap map;
  map.in_dim = in_dim;
  map.out_dim = f.output_dim();
  for (int i = 0; i < map.out_dim; ++i) {
    const ExprPtr& e = f.exprs()[static_cast<std::size_t>(i)];
    if (e->max_coord() >= in_dim) return std::nullopt;  // references beyond domain
    auto form = match_linear(*e);
    if (!form) return std::nullopt;
    for (int j = 0; j < in_dim; ++j)
      map.a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          form->coeff[static_cast<std::size_t>(j)];
    map.b[static_cast<std::size_t>(i)] = form->offset;
  }
  return map;
}

}  // namespace idxl
