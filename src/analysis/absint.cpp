#include "analysis/absint.hpp"

#include <algorithm>
#include <numeric>

namespace idxl {

namespace {

using i128 = __int128;

constexpr int64_t kMax = INT64_MAX;
constexpr int64_t kMin = INT64_MIN;

i128 i128_abs(i128 v) { return v < 0 ? -v : v; }

i128 gcd128(i128 a, i128 b) {
  a = i128_abs(a);
  b = i128_abs(b);
  while (b != 0) {
    const i128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Floor-modulus into [0, m); m >= 1. Works for any i128 input, so
/// congruence arithmetic never overflows internally.
int64_t mod_floor64(i128 a, int64_t m) {
  i128 r = a % m;
  if (r < 0) r += m;
  return static_cast<int64_t>(r);
}

/// Tighten the interval endpoints onto the congruence class and fold
/// singleton intervals to exact constants. A sound transfer chain always
/// leaves the two components with a non-empty intersection; an empty one is
/// treated defensively as "unanalyzable".
std::optional<AbsVal> normalize(AbsVal v) {
  if (v.mod == 0) {
    v.lo = v.hi = v.rem;
    return v;
  }
  if (v.lo > v.hi) return std::nullopt;
  if (v.mod > 1) {
    v.rem = mod_floor64(v.rem, v.mod);
    const int64_t up = mod_floor64(static_cast<i128>(v.rem) - v.lo, v.mod);
    const int64_t down = mod_floor64(static_cast<i128>(v.hi) - v.rem, v.mod);
    const i128 nlo = static_cast<i128>(v.lo) + up;
    const i128 nhi = static_cast<i128>(v.hi) - down;
    if (nlo > nhi) return std::nullopt;
    v.lo = static_cast<int64_t>(nlo);
    v.hi = static_cast<int64_t>(nhi);
  } else {
    v.rem = 0;
  }
  if (v.lo == v.hi) {
    v.mod = 0;
    v.rem = v.lo;
  }
  return v;
}

std::optional<int64_t> checked_mod(int64_t a, int64_t b) {
  if (b == 0) return std::nullopt;
  if (a == kMin && b == -1) return 0;  // remainder is 0; a/b would overflow
  return a % b;
}

}  // namespace

std::optional<int64_t> checked_add(int64_t a, int64_t b) {
  int64_t r;
  if (__builtin_add_overflow(a, b, &r)) return std::nullopt;
  return r;
}

std::optional<int64_t> checked_sub(int64_t a, int64_t b) {
  int64_t r;
  if (__builtin_sub_overflow(a, b, &r)) return std::nullopt;
  return r;
}

std::optional<int64_t> checked_mul(int64_t a, int64_t b) {
  int64_t r;
  if (__builtin_mul_overflow(a, b, &r)) return std::nullopt;
  return r;
}

std::optional<int64_t> checked_neg(int64_t a) {
  if (a == kMin) return std::nullopt;
  return -a;
}

std::optional<int64_t> checked_div(int64_t a, int64_t b) {
  if (b == 0) return std::nullopt;
  if (a == kMin && b == -1) return std::nullopt;
  return a / b;
}

bool AbsVal::contains(int64_t v) const {
  if (mod == 0) return v == rem;
  if (v < lo || v > hi) return false;
  if (mod == 1) return true;
  return mod_floor64(v, mod) == rem;
}

std::string AbsVal::to_string() const {
  if (mod == 0) return "{" + std::to_string(rem) + "}";
  std::string s = "[" + std::to_string(lo) + "," + std::to_string(hi) + "]";
  if (mod > 1) s += " mod " + std::to_string(mod) + " == " + std::to_string(rem);
  return s;
}

AbsVal abs_const(int64_t c) { return AbsVal{c, c, 0, c}; }

std::optional<AbsVal> abs_range(int64_t lo, int64_t hi) {
  if (lo > hi) return std::nullopt;
  if (lo == hi) return abs_const(lo);
  return AbsVal{lo, hi, 1, 0};
}

std::optional<AbsVal> abs_add(const AbsVal& a, const AbsVal& b) {
  const auto lo = checked_add(a.lo, b.lo);
  const auto hi = checked_add(a.hi, b.hi);
  if (!lo || !hi) return std::nullopt;
  AbsVal r;
  r.lo = *lo;
  r.hi = *hi;
  r.mod = std::gcd(a.mod, b.mod);
  r.rem = r.mod == 0 ? r.lo
                     : mod_floor64(static_cast<i128>(a.rem) + b.rem, std::max<int64_t>(r.mod, 1));
  return normalize(r);
}

std::optional<AbsVal> abs_neg(const AbsVal& a) {
  const auto lo = checked_neg(a.hi);
  const auto hi = checked_neg(a.lo);
  if (!lo || !hi) return std::nullopt;
  AbsVal r;
  r.lo = *lo;
  r.hi = *hi;
  r.mod = a.mod;
  r.rem = a.mod == 0 ? *lo : mod_floor64(-static_cast<i128>(a.rem), std::max<int64_t>(a.mod, 1));
  return normalize(r);
}

std::optional<AbsVal> abs_sub(const AbsVal& a, const AbsVal& b) {
  const auto nb = abs_neg(b);
  return nb ? abs_add(a, *nb) : std::nullopt;
}

std::optional<AbsVal> abs_mul(const AbsVal& a, const AbsVal& b) {
  const std::optional<int64_t> corners[4] = {
      checked_mul(a.lo, b.lo), checked_mul(a.lo, b.hi),
      checked_mul(a.hi, b.lo), checked_mul(a.hi, b.hi)};
  AbsVal r;
  r.lo = kMax;
  r.hi = kMin;
  for (const auto& c : corners) {
    if (!c) return std::nullopt;
    r.lo = std::min(r.lo, *c);
    r.hi = std::max(r.hi, *c);
  }
  if (a.mod == 0 && b.mod == 0) {
    r.mod = 0;
    r.rem = r.lo;
  } else if (a.mod == 0 || b.mod == 0) {
    // const · (m·Z + rem) = (|const|·m)·Z + const·rem
    const AbsVal& k = a.mod == 0 ? a : b;
    const AbsVal& v = a.mod == 0 ? b : a;
    if (k.rem == 0) {
      r.mod = 0;
      r.rem = 0;
    } else {
      // c·(m·Z + rem) = (|c|·m)·Z + c·rem; with m == 1 this still leaves
      // the multiples-of-c congruence, so no special case for plain ranges.
      const i128 m = i128_abs(static_cast<i128>(k.rem)) * std::max<int64_t>(v.mod, 1);
      if (m > kMax) {
        r.mod = 1;
        r.rem = 0;
      } else {
        r.mod = static_cast<int64_t>(m);
        r.rem = mod_floor64(static_cast<i128>(k.rem) * v.rem, r.mod);
      }
    }
  } else if (a.mod == 1 || b.mod == 1) {
    r.mod = 1;
    r.rem = 0;
  } else {
    // (ma·x + ra)(mb·y + rb) ≡ ra·rb  (mod gcd(ma·mb, ma·rb, mb·ra))
    const i128 g = gcd128(gcd128(static_cast<i128>(a.mod) * b.mod,
                                 static_cast<i128>(a.mod) * b.rem),
                          static_cast<i128>(b.mod) * a.rem);
    if (g <= 1 || g > kMax) {
      r.mod = 1;
      r.rem = 0;
    } else {
      r.mod = static_cast<int64_t>(g);
      r.rem = mod_floor64(static_cast<i128>(a.rem) * b.rem, r.mod);
    }
  }
  return normalize(r);
}

std::optional<AbsVal> abs_div(const AbsVal& a, const AbsVal& b) {
  if (b.mod != 0 || b.rem == 0) return std::nullopt;
  const int64_t c = b.rem;
  const auto q1 = checked_div(a.lo, c);
  const auto q2 = checked_div(a.hi, c);
  if (!q1 || !q2) return std::nullopt;
  AbsVal r;
  // Truncating division by a fixed divisor is monotone in the dividend
  // (nondecreasing for c > 0, nonincreasing for c < 0), so the endpoint
  // quotients bound the image.
  r.lo = std::min(*q1, *q2);
  r.hi = std::max(*q1, *q2);
  if (a.mod == 0) {
    r.mod = 0;
    r.rem = *q1;
    return normalize(r);
  }
  // Exact when c divides both the modulus and the residue: every concrete
  // x = k·mod + rem then divides evenly, so x/c = k·(mod/c) + rem/c.
  const int64_t ac = c == kMin ? 0 : (c < 0 ? -c : c);
  if (ac != 0 && a.mod % ac == 0 && a.rem % ac == 0) {
    r.mod = a.mod / ac;
    r.rem = r.mod <= 1 ? 0 : mod_floor64(a.rem / c, r.mod);
  } else {
    r.mod = 1;
    r.rem = 0;
  }
  return normalize(r);
}

std::optional<AbsVal> abs_mod(const AbsVal& a, const AbsVal& b) {
  if (b.mod != 0 || b.rem == 0 || b.rem == kMin) return std::nullopt;
  const int64_t n = b.rem;
  const int64_t N = n < 0 ? -n : n;
  if (a.mod == 0) {
    const auto v = checked_mod(a.rem, n);
    return v ? std::optional(abs_const(*v)) : std::nullopt;
  }
  // C++ remainder is the identity on [0, N) and (-N, 0].
  if (a.lo >= 0 && a.hi < N) return a;
  if (a.hi <= 0 && a.lo > -N) return a;
  AbsVal r;
  r.lo = a.lo >= 0 ? 0 : std::max(a.lo, -(N - 1));
  r.hi = a.hi <= 0 ? 0 : std::min(a.hi, N - 1);
  // x % n differs from x by a multiple of n, so x % n ≡ x ≡ rem modulo
  // gcd(mod, N) — true for C++ remainder regardless of signs.
  const int64_t g = a.mod == 1 ? 1 : std::gcd(a.mod, N);
  if (g > 1) {
    r.mod = g;
    r.rem = mod_floor64(a.rem, g);
  } else {
    r.mod = 1;
    r.rem = 0;
  }
  return normalize(r);
}

bool abs_disjoint(const AbsVal& a, const AbsVal& b) {
  if (a.hi < b.lo || b.hi < a.lo) return true;
  // Residue classes rem_a + mod_a·Z and rem_b + mod_b·Z intersect iff
  // rem_a ≡ rem_b (mod gcd(mod_a, mod_b)); gcd(0, m) = m covers constants.
  const int64_t g = std::gcd(a.mod, b.mod);
  if (g == 0) return a.rem != b.rem;
  if (g == 1) return false;
  return mod_floor64(a.rem, g) != mod_floor64(b.rem, g);
}

std::optional<AbsVal> abs_eval(const Expr& e, const Rect& bounds) {
  switch (e.kind) {
    case ExprKind::kConst:
      return abs_const(e.value);
    case ExprKind::kCoord: {
      const auto axis = e.value;
      if (axis < 0 || axis >= bounds.dim()) return std::nullopt;
      return abs_range(bounds.lo[static_cast<int>(axis)], bounds.hi[static_cast<int>(axis)]);
    }
    case ExprKind::kNeg: {
      const auto a = abs_eval(*e.lhs, bounds);
      return a ? abs_neg(*a) : std::nullopt;
    }
    default: {
      const auto a = abs_eval(*e.lhs, bounds);
      const auto b = abs_eval(*e.rhs, bounds);
      if (!a || !b) return std::nullopt;
      switch (e.kind) {
        case ExprKind::kAdd: return abs_add(*a, *b);
        case ExprKind::kSub: return abs_sub(*a, *b);
        case ExprKind::kMul: return abs_mul(*a, *b);
        case ExprKind::kDiv: return abs_div(*a, *b);
        case ExprKind::kMod: return abs_mod(*a, *b);
        default: return std::nullopt;
      }
    }
  }
}

std::optional<std::vector<AbsVal>> abs_image(const ProjectionFunctor& f,
                                             const Domain& domain) {
  if (!f.is_symbolic() || domain.empty()) return std::nullopt;
  std::vector<AbsVal> out;
  out.reserve(f.exprs().size());
  for (const auto& e : f.exprs()) {
    const auto v = abs_eval(*e, domain.bounds());
    if (!v) return std::nullopt;
    out.push_back(*v);
  }
  return out;
}

uint32_t collect_axes(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kConst:
      return 0;
    case ExprKind::kCoord:
      return (e.value >= 0 && e.value < 32) ? (1u << e.value) : ~0u;
    case ExprKind::kNeg:
      return collect_axes(*e.lhs);
    default:
      return collect_axes(*e.lhs) | collect_axes(*e.rhs);
  }
}

std::optional<int64_t> const_fold(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kConst:
      return e.value;
    case ExprKind::kCoord:
      return std::nullopt;
    case ExprKind::kNeg: {
      const auto a = const_fold(*e.lhs);
      return a ? checked_neg(*a) : std::nullopt;
    }
    default: {
      const auto a = const_fold(*e.lhs);
      const auto b = const_fold(*e.rhs);
      if (!a || !b) return std::nullopt;
      switch (e.kind) {
        case ExprKind::kAdd: return checked_add(*a, *b);
        case ExprKind::kSub: return checked_sub(*a, *b);
        case ExprKind::kMul: return checked_mul(*a, *b);
        case ExprKind::kDiv: return checked_div(*a, *b);
        case ExprKind::kMod: return checked_mod(*a, *b);
        default: return std::nullopt;
      }
    }
  }
}

std::optional<Linear1D> match_linear_1d(const Expr& e, int axis) {
  if (const auto c = const_fold(e)) return Linear1D{0, *c};
  switch (e.kind) {
    case ExprKind::kCoord:
      return e.value == axis ? std::optional(Linear1D{1, 0}) : std::nullopt;
    case ExprKind::kNeg: {
      const auto a = match_linear_1d(*e.lhs, axis);
      if (!a) return std::nullopt;
      const auto na = checked_neg(a->a);
      const auto nb = checked_neg(a->b);
      if (!na || !nb) return std::nullopt;
      return Linear1D{*na, *nb};
    }
    case ExprKind::kAdd:
    case ExprKind::kSub: {
      const auto l = match_linear_1d(*e.lhs, axis);
      const auto r = match_linear_1d(*e.rhs, axis);
      if (!l || !r) return std::nullopt;
      const auto a = e.kind == ExprKind::kAdd ? checked_add(l->a, r->a)
                                              : checked_sub(l->a, r->a);
      const auto b = e.kind == ExprKind::kAdd ? checked_add(l->b, r->b)
                                              : checked_sub(l->b, r->b);
      if (!a || !b) return std::nullopt;
      return Linear1D{*a, *b};
    }
    case ExprKind::kMul: {
      const auto l = match_linear_1d(*e.lhs, axis);
      const auto r = match_linear_1d(*e.rhs, axis);
      if (!l || !r) return std::nullopt;
      if (l->a != 0 && r->a != 0) return std::nullopt;  // quadratic
      const auto t1 = checked_mul(l->a, r->b);
      const auto t2 = checked_mul(r->a, l->b);
      const auto b = checked_mul(l->b, r->b);
      if (!t1 || !t2 || !b) return std::nullopt;
      const auto a = checked_add(*t1, *t2);
      if (!a) return std::nullopt;
      return Linear1D{*a, *b};
    }
    default:
      return std::nullopt;
  }
}

std::optional<Quad1D> match_quad_1d(const Expr& e, int axis) {
  if (const auto c = const_fold(e)) return Quad1D{0, 0, *c};
  switch (e.kind) {
    case ExprKind::kCoord:
      return e.value == axis ? std::optional(Quad1D{0, 1, 0}) : std::nullopt;
    case ExprKind::kNeg: {
      const auto v = match_quad_1d(*e.lhs, axis);
      if (!v) return std::nullopt;
      const auto q = checked_neg(v->q);
      const auto a = checked_neg(v->a);
      const auto b = checked_neg(v->b);
      if (!q || !a || !b) return std::nullopt;
      return Quad1D{*q, *a, *b};
    }
    case ExprKind::kAdd:
    case ExprKind::kSub: {
      const auto l = match_quad_1d(*e.lhs, axis);
      const auto r = match_quad_1d(*e.rhs, axis);
      if (!l || !r) return std::nullopt;
      const bool add = e.kind == ExprKind::kAdd;
      const auto q = add ? checked_add(l->q, r->q) : checked_sub(l->q, r->q);
      const auto a = add ? checked_add(l->a, r->a) : checked_sub(l->a, r->a);
      const auto b = add ? checked_add(l->b, r->b) : checked_sub(l->b, r->b);
      if (!q || !a || !b) return std::nullopt;
      return Quad1D{*q, *a, *b};
    }
    case ExprKind::kMul: {
      const auto l = match_quad_1d(*e.lhs, axis);
      const auto r = match_quad_1d(*e.rhs, axis);
      if (!l || !r) return std::nullopt;
      // Product must stay degree <= 2: the x^4 and x^3 coefficients of
      // (lq·x² + la·x + lb)(rq·x² + ra·x + rb) must vanish identically.
      if (l->q != 0 && (r->q != 0 || r->a != 0)) return std::nullopt;
      if (r->q != 0 && (l->q != 0 || l->a != 0)) return std::nullopt;
      if (l->a != 0 && r->a != 0 && (l->q != 0 || r->q != 0)) return std::nullopt;
      const auto t1 = checked_mul(l->q, r->b);
      const auto t2 = checked_mul(l->a, r->a);
      const auto t3 = checked_mul(l->b, r->q);
      if (!t1 || !t2 || !t3) return std::nullopt;
      const auto q12 = checked_add(*t1, *t2);
      const auto q = q12 ? checked_add(*q12, *t3) : std::nullopt;
      const auto u1 = checked_mul(l->a, r->b);
      const auto u2 = checked_mul(l->b, r->a);
      if (!q || !u1 || !u2) return std::nullopt;
      const auto a = checked_add(*u1, *u2);
      const auto b = checked_mul(l->b, r->b);
      if (!a || !b) return std::nullopt;
      return Quad1D{*q, *a, *b};
    }
    default:
      return std::nullopt;
  }
}

DeltaSet delta_intersect(const DeltaSet& a, const DeltaSet& b) {
  if (a.stride == 0 || b.stride == 0) return DeltaSet::none();
  const int64_t g = std::gcd(a.stride, b.stride);
  const i128 l = static_cast<i128>(a.stride) / g * b.stride;
  // A common collision delta must be a multiple of both strides, i.e. of
  // their lcm; an lcm beyond int64 exceeds every representable extent.
  if (l > kMax) return DeltaSet::none();
  DeltaSet r;
  r.stride = static_cast<int64_t>(l);
  r.max_delta = std::min(a.max_delta, b.max_delta);
  if (r.max_delta < r.stride) return DeltaSet::none();
  return r;
}

DeltaSet collision_deltas(const Expr& e, int axis, int64_t lo, int64_t hi) {
  const Expr* cur = &e;
  // Strip injectivity-preserving outer layers — x ± c, −x, c·x (c ≠ 0),
  // x / ±1 — whose collisions are exactly those of the inner expression.
  bool stripped = true;
  while (stripped) {
    stripped = false;
    switch (cur->kind) {
      case ExprKind::kNeg:
        cur = cur->lhs.get();
        stripped = true;
        break;
      case ExprKind::kAdd:
      case ExprKind::kSub:
        if (const_fold(*cur->lhs)) {
          cur = cur->rhs.get();
          stripped = true;
        } else if (const_fold(*cur->rhs)) {
          cur = cur->lhs.get();
          stripped = true;
        }
        break;
      case ExprKind::kMul: {
        if (const auto cl = const_fold(*cur->lhs)) {
          if (*cl == 0) return DeltaSet::all();
          cur = cur->rhs.get();
          stripped = true;
        } else if (const auto cr = const_fold(*cur->rhs)) {
          if (*cr == 0) return DeltaSet::all();
          cur = cur->lhs.get();
          stripped = true;
        }
        break;
      }
      case ExprKind::kDiv: {
        const auto cr = const_fold(*cur->rhs);
        if (cr && (*cr == 1 || *cr == -1)) {
          cur = cur->lhs.get();
          stripped = true;
        }
        break;
      }
      default:
        break;
    }
  }

  if (collect_axes(*cur) == 0) return DeltaSet::all();  // constant in the axis

  switch (cur->kind) {
    case ExprKind::kCoord:
      return cur->value == axis ? DeltaSet::none() : DeltaSet::all();
    case ExprKind::kMod: {
      const auto n = const_fold(*cur->rhs);
      if (!n || *n == 0 || *n == kMin) return DeltaSet::all();
      const auto inner = match_linear_1d(*cur->lhs, axis);
      if (!inner || inner->a == 0 || inner->a == kMin) return DeltaSet::all();
      // (a·i+b) % n == (a·j+b) % n forces n | a·(i−j) (true for C++
      // remainder regardless of signs), hence (i−j) is a multiple of
      // n / gcd(|a|, n).
      const int64_t N = *n < 0 ? -*n : *n;
      const int64_t A = inner->a < 0 ? -inner->a : inner->a;
      DeltaSet r;
      r.stride = N / std::gcd(A, N);
      r.max_delta = kMax;
      return r;
    }
    case ExprKind::kDiv: {
      const auto c = const_fold(*cur->rhs);
      if (!c || *c == 0 || *c == kMin) return DeltaSet::all();
      const auto inner = match_linear_1d(*cur->lhs, axis);
      if (!inner || inner->a == 0 || inner->a == kMin) return DeltaSet::all();
      // trunc(x/c) == trunc(y/c) requires |x−y| <= 2|c|−2: the widest
      // preimage of one quotient is (−|c|, |c|) around quotient 0. When the
      // dividend a·i+b cannot change sign over [lo, hi], truncation behaves
      // like floor (or ceiling) and every preimage narrows to width |c|−1 —
      // the tightening that proves the delinearization pair (i%c, i/c).
      const int64_t C = *c < 0 ? -*c : *c;
      const int64_t A = inner->a < 0 ? -inner->a : inner->a;
      const i128 v1 = static_cast<i128>(inner->a) * lo + inner->b;
      const i128 v2 = static_cast<i128>(inner->a) * hi + inner->b;
      const bool single_sign = (v1 >= 0 && v2 >= 0) || (v1 <= 0 && v2 <= 0);
      const i128 width = single_sign ? static_cast<i128>(C) - 1
                                     : static_cast<i128>(2) * C - 2;
      const i128 md = width / A;
      if (md <= 0) return DeltaSet::none();
      return DeltaSet{1, md > kMax ? kMax : static_cast<int64_t>(md)};
    }
    default: {
      const auto q = match_quad_1d(*cur, axis);
      if (!q) return DeltaSet::all();
      if (q->q == 0) return q->a != 0 ? DeltaSet::none() : DeltaSet::all();
      if (hi <= lo) return DeltaSet::none();  // at most one point
      // Successive difference v(i+1)−v(i) = q·(2i+1) + a is linear in i;
      // one strict sign at both ends of [lo, hi−1] means strict
      // monotonicity, hence injectivity.
      const i128 d_first = static_cast<i128>(q->q) * (2 * static_cast<i128>(lo) + 1) + q->a;
      const i128 d_last =
          static_cast<i128>(q->q) * (2 * static_cast<i128>(hi - 1) + 1) + q->a;
      if ((d_first > 0 && d_last > 0) || (d_first < 0 && d_last < 0))
        return DeltaSet::none();
      return DeltaSet::all();
    }
  }
}

}  // namespace idxl
