#pragma once

#include "functor/affine.hpp"
#include "region/domain.hpp"

namespace idxl {

/// Three-valued verdicts of the static analyzer. kUnknown is not a failure:
/// it routes the argument to the dynamic check (§4's hybrid design).
enum class Tri : uint8_t { kYes, kNo, kUnknown };

inline const char* tri_name(Tri t) {
  switch (t) {
    case Tri::kYes: return "yes";
    case Tri::kNo: return "no";
    case Tri::kUnknown: return "unknown";
  }
  return "?";
}

/// Statically decide whether `f` is injective over launch domain `D`.
///
/// Recognized shapes (§4): constant (kNo unless |D| <= 1), identity (kYes),
/// affine A·i+b (kYes iff A has full column rank; kNo if a small integer
/// null vector connects two points of D — the "degenerates to a constant"
/// case). Everything else — mod, div, quadratic, opaque — is kUnknown.
///
/// With `extended` set, the analyzer additionally decides two families the
/// paper leaves to the dynamic check (its design explicitly leaves "the
/// strength of this static analysis" open, §4):
///  * (a·i + b) mod n over a dense 1-D domain — injective iff the domain
///    extent fits within one period n / gcd(|a|, n); provably non-injective
///    when it doesn't and the value range has uniform sign.
///  * quadratic q·i² + a·i + b over a dense 1-D domain — injective when the
///    finite-difference q·(2i+1) + a keeps one strict sign across the
///    domain (monotone sequence).
Tri static_injectivity(const ProjectionFunctor& f, const Domain& domain,
                       bool extended = false);

/// Statically decide whether the images f(D) and g(D) are disjoint sets
/// (cross-check rule 3 of §3). Proves kYes when both maps are diagonal
/// affine with non-overlapping image boxes; proves kNo when the functors
/// are structurally identical (images equal and nonempty).
///
/// With `extended` set, additionally decides the same-slope 1-D affine
/// family over dense domains: a·i+b₁ and a·j+b₂ collide iff a | (b₂-b₁)
/// and |(b₂-b₁)/a| fits within the domain extent — so interleavings like
/// 2i vs 2i+1 are proven disjoint, and shifted copies like i vs i+k are
/// proven overlapping when k is small enough.
Tri static_images_disjoint(const ProjectionFunctor& f, const ProjectionFunctor& g,
                           const Domain& domain, bool extended = false);

}  // namespace idxl
