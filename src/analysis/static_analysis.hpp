#pragma once

#include "analysis/witness.hpp"
#include "functor/affine.hpp"
#include "region/domain.hpp"

namespace idxl {

/// Three-valued verdicts of the static analyzer. kUnknown is not a failure:
/// it routes the argument to the dynamic check (§4's hybrid design).
enum class Tri : uint8_t { kYes, kNo, kUnknown };

inline const char* tri_name(Tri t) {
  switch (t) {
    case Tri::kYes: return "yes";
    case Tri::kNo: return "no";
    case Tri::kUnknown: return "unknown";
  }
  return "?";
}

/// Statically decide whether `f` is injective over launch domain `D`.
///
/// Base classifier (§4): constant (kNo unless |D| <= 1), identity (kYes),
/// affine A·i+b (kYes iff A has full column rank; kNo if a small integer
/// null vector connects two points of D — the "degenerates to a constant"
/// case).
///
/// With `extended` set, symbolic functors over dense domains additionally
/// go through the abstract interpreter (analysis/absint.hpp): every output
/// component is analyzed in the interval × congruence domain, and
/// injectivity is decided per launch axis by residue-class separation
/// (collision deltas of all components on an axis intersect to the empty
/// set) or strict monotonicity. This subsumes the old 1-D modular /
/// quadratic special cases and extends them to multi-dimensional and
/// composed (affine∘mod, affine∘div) functors. kNo verdicts are only ever
/// produced from a *verified* concrete collision — when `witness` is
/// non-null it receives the colliding pair, re-checkable with
/// witness_valid().
Tri static_injectivity(const ProjectionFunctor& f, const Domain& domain,
                       bool extended = false, RaceWitness* witness = nullptr);

/// Statically decide whether the images f(D) and g(D) are disjoint sets
/// (cross-check rule 3 of §3). Proves kYes when the output arities differ,
/// when both maps are diagonal affine with non-overlapping image boxes, or
/// — with `extended` — when any output component's abstract images are
/// separated (disjoint intervals or incompatible residue classes, e.g. 2i
/// vs 2i+1). Proves kNo when the functors are structurally identical, via
/// the same-slope 1-D affine shift rule, or from a concrete sampled
/// collision; kNo verdicts fill `witness` with a pair (p1, p2) such that
/// f(p1) == g(p2).
Tri static_images_disjoint(const ProjectionFunctor& f, const ProjectionFunctor& g,
                           const Domain& domain, bool extended = false,
                           RaceWitness* witness = nullptr);

}  // namespace idxl
