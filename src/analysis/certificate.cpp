#include "analysis/certificate.hpp"

#include <algorithm>

#include "functor/expr.hpp"

namespace idxl {

namespace {

// The checker is deliberately self-contained: it re-derives every claim with
// its own exact 128-bit arithmetic rather than calling into analysis/absint,
// so an analyzer bug cannot approve its own wrong verdict.
using i128 = __int128;

i128 abs_i128(i128 v) { return v < 0 ? -v : v; }

i128 gcd_i128(i128 a, i128 b) {
  a = abs_i128(a);
  b = abs_i128(b);
  while (b != 0) {
    const i128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Floor-modulus into [0, m); m >= 1.
i128 floor_rem(i128 a, i128 m) {
  i128 r = a % m;
  if (r < 0) r += m;
  return r;
}

/// Derived abstract set, computed by the checker itself from the claimed
/// children of a step: the integers x with lo <= x <= hi and (mod == 0 ?
/// x == rem : mod == 1 ? true : x ≡ rem (mod mod)). Kept in 128-bit so the
/// checker never wraps; `empty` marks a provably empty set (any claim
/// over-approximates it).
struct Derived {
  i128 lo = 0, hi = 0;
  i128 mod = 1, rem = 0;
  bool empty = false;
};

Derived derived_const(i128 c) { return Derived{c, c, 0, c, false}; }

/// Tighten the interval endpoints onto the congruence class and collapse
/// singletons, mirroring the analyzer's normalize() so a claim equal to the
/// analyzer's result always passes the containment check.
Derived tighten(Derived v) {
  if (v.empty) return v;
  if (v.mod == 0) {
    v.lo = v.hi = v.rem;
    return v;
  }
  if (v.lo > v.hi) {
    v.empty = true;
    return v;
  }
  if (v.mod >= 2) {
    v.rem = floor_rem(v.rem, v.mod);
    v.lo += floor_rem(v.rem - v.lo, v.mod);
    v.hi -= floor_rem(v.hi - v.rem, v.mod);
    if (v.lo > v.hi) {
      v.empty = true;
      return v;
    }
  } else {
    v.rem = 0;
  }
  if (v.lo == v.hi) {
    v.mod = 0;
    v.rem = v.lo;
  }
  return v;
}

/// Structural well-formedness of a claimed value: the interval and the
/// residue class must describe a consistent set, otherwise later transfer
/// steps could mix the two views unsoundly.
bool well_formed(const CertVal& v) {
  if (v.mod < 0) return false;
  if (v.mod == 0) return v.lo == v.hi && v.lo == v.rem;
  if (v.lo > v.hi) return false;
  if (v.mod == 1) return v.rem == 0;
  return v.rem >= 0 && v.rem < v.mod &&
         floor_rem(v.lo, v.mod) == v.rem && floor_rem(v.hi, v.mod) == v.rem;
}

/// Does the claimed value R cover every integer of the derived set S?
/// (Sound direction: accepting R means gamma(R) ⊇ gamma(S) ⊇ concrete.)
bool claim_covers(const CertVal& r, const Derived& s) {
  if (s.empty) return true;
  if (r.mod == 0) return s.mod == 0 && s.rem == r.rem;
  if (s.lo < r.lo || s.hi > r.hi) return false;
  if (r.mod == 1) return true;
  // r.mod >= 2: S's class must be a subset of R's class.
  if (s.mod == 0) return floor_rem(s.rem, r.mod) == r.rem;
  if (s.mod == 1) return false;
  return s.mod % r.mod == 0 && floor_rem(s.rem, r.mod) == r.rem;
}

Derived derived_neg(const Derived& a) {
  Derived r;
  r.lo = -a.hi;
  r.hi = -a.lo;
  r.mod = a.mod;
  r.rem = a.mod == 0 ? -a.rem : floor_rem(-a.rem, a.mod < 1 ? 1 : a.mod);
  return tighten(r);
}

Derived derived_add(const Derived& a, const Derived& b) {
  Derived r;
  r.lo = a.lo + b.lo;
  r.hi = a.hi + b.hi;
  r.mod = gcd_i128(a.mod, b.mod);
  r.rem = r.mod == 0 ? a.rem + b.rem : floor_rem(a.rem + b.rem, r.mod);
  return tighten(r);
}

Derived derived_mul(const Derived& a, const Derived& b) {
  Derived r;
  const i128 corners[4] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi};
  r.lo = *std::min_element(corners, corners + 4);
  r.hi = *std::max_element(corners, corners + 4);
  if (a.mod == 0 && b.mod == 0) {
    r.mod = 0;
    r.rem = a.rem * b.rem;
  } else if (a.mod == 0 || b.mod == 0) {
    // c · (m·Z + rem) ⊆ (|c|·m)·Z + c·rem.
    const Derived& k = a.mod == 0 ? a : b;
    const Derived& v = a.mod == 0 ? b : a;
    if (k.rem == 0) {
      r.mod = 0;
      r.rem = 0;
    } else {
      r.mod = abs_i128(k.rem) * (v.mod < 1 ? 1 : v.mod);
      r.rem = floor_rem(k.rem * v.rem, r.mod);
    }
  } else {
    // (ma·x + ra)(mb·y + rb) ≡ ra·rb  (mod gcd(ma·mb, ma·rb, mb·ra)); valid
    // for mod == 1 sides too (their rem is 0 by well-formedness).
    const i128 g = gcd_i128(gcd_i128(a.mod * b.mod, a.mod * b.rem), b.mod * a.rem);
    if (g <= 1) {
      r.mod = 1;
      r.rem = 0;
    } else {
      r.mod = g;
      r.rem = floor_rem(a.rem * b.rem, g);
    }
  }
  return tighten(r);
}

Derived derived_sub(const Derived& a, const Derived& b) {
  return derived_add(a, derived_neg(b));
}

/// Truncating division; only a constant divisor is certifiable.
std::optional<Derived> derived_div(const Derived& a, const Derived& b) {
  if (b.mod != 0 || b.rem == 0) return std::nullopt;
  const i128 c = b.rem;
  const i128 q1 = a.lo / c;  // i128 division truncates, like int64
  const i128 q2 = a.hi / c;
  Derived r;
  r.lo = std::min(q1, q2);
  r.hi = std::max(q1, q2);
  if (a.mod == 0) {
    r.mod = 0;
    r.rem = a.rem / c;
    return tighten(r);
  }
  const i128 ac = abs_i128(c);
  if (a.mod % ac == 0 && a.rem % ac == 0) {
    // Every member divides evenly, so division distributes over the class.
    r.mod = a.mod / ac;
    r.rem = r.mod <= 1 ? 0 : floor_rem(a.rem / c, r.mod);
  } else {
    r.mod = 1;
    r.rem = 0;
  }
  return tighten(r);
}

/// C++ remainder; only a constant nonzero modulus is certifiable.
std::optional<Derived> derived_mod(const Derived& a, const Derived& b) {
  if (b.mod != 0 || b.rem == 0) return std::nullopt;
  const i128 n = b.rem;
  const i128 N = abs_i128(n);
  if (a.mod == 0) return derived_const(a.rem % n);
  // The remainder is the identity on [0, N) and (-N, 0]: the result set is
  // exactly the input set, class information included.
  if ((a.lo >= 0 && a.hi < N) || (a.hi <= 0 && a.lo > -N)) return a;
  Derived r;
  r.lo = a.lo >= 0 ? 0 : std::max(a.lo, -(N - 1));
  r.hi = a.hi <= 0 ? 0 : std::min(a.hi, N - 1);
  // x % n ≡ x ≡ rem  (mod gcd(mod, N)), for C++ remainder of any sign.
  const i128 g = a.mod == 1 ? 1 : gcd_i128(a.mod, N);
  if (g > 1) {
    r.mod = g;
    r.rem = floor_rem(a.rem, g);
  } else {
    r.mod = 1;
    r.rem = 0;
  }
  return tighten(r);
}

bool fail(std::string* why, const std::string& msg) {
  if (why != nullptr) *why = msg;
  return false;
}

/// Flatten the actual expression into the postfix (op, value) sequence a
/// derivation must match 1:1, so certificate claims are anchored to the
/// launch's real functor and not an attacker-chosen stand-in.
void flatten_expr(const Expr& e, std::vector<CertStep>& out) {
  switch (e.kind) {
    case ExprKind::kConst:
      out.push_back({CertOp::kConst, e.value, {}});
      return;
    case ExprKind::kCoord:
      out.push_back({CertOp::kCoord, e.value, {}});
      return;
    case ExprKind::kNeg:
      flatten_expr(*e.lhs, out);
      out.push_back({CertOp::kNeg, 0, {}});
      return;
    default:
      flatten_expr(*e.lhs, out);
      flatten_expr(*e.rhs, out);
      CertOp op = CertOp::kAdd;
      switch (e.kind) {
        case ExprKind::kAdd: op = CertOp::kAdd; break;
        case ExprKind::kSub: op = CertOp::kSub; break;
        case ExprKind::kMul: op = CertOp::kMul; break;
        case ExprKind::kDiv: op = CertOp::kDiv; break;
        case ExprKind::kMod: op = CertOp::kMod; break;
        default: break;
      }
      out.push_back({op, 0, {}});
      return;
  }
}

/// Verify one side's derivation against the actual component expression and
/// the launch-domain bounds; on success `root` receives the (well-formed)
/// claimed root value.
bool verify_derivation(const std::vector<CertStep>& steps, const Expr& expr,
                       const Rect& bounds, CertVal* root, std::string* why) {
  std::vector<CertStep> expected;
  flatten_expr(expr, expected);
  if (expected.size() != steps.size())
    return fail(why, "derivation shape does not match the functor expression");
  std::vector<Derived> stack;
  stack.reserve(steps.size());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const CertStep& s = steps[i];
    if (s.op != expected[i].op || s.value != expected[i].value)
      return fail(why, "derivation step " + std::to_string(i) +
                           " does not match the functor expression");
    if (!well_formed(s.val))
      return fail(why, "step " + std::to_string(i) + " claim is malformed: " +
                           s.val.to_string());
    Derived got;
    switch (s.op) {
      case CertOp::kConst:
        got = derived_const(s.value);
        break;
      case CertOp::kCoord: {
        if (s.value < 0 || s.value >= bounds.dim())
          return fail(why, "coordinate axis out of range");
        const auto axis = static_cast<int>(s.value);
        got.lo = bounds.lo[axis];
        got.hi = bounds.hi[axis];
        got = tighten(got);
        break;
      }
      case CertOp::kNeg: {
        if (stack.empty()) return fail(why, "derivation stack underflow");
        got = derived_neg(stack.back());
        stack.pop_back();
        break;
      }
      default: {
        if (stack.size() < 2) return fail(why, "derivation stack underflow");
        const Derived b = stack.back();
        stack.pop_back();
        const Derived a = stack.back();
        stack.pop_back();
        std::optional<Derived> r;
        switch (s.op) {
          case CertOp::kAdd: r = derived_add(a, b); break;
          case CertOp::kSub: r = derived_sub(a, b); break;
          case CertOp::kMul: r = derived_mul(a, b); break;
          case CertOp::kDiv: r = derived_div(a, b); break;
          case CertOp::kMod: r = derived_mod(a, b); break;
          default: return fail(why, "unknown derivation op");
        }
        if (!r) return fail(why, "step " + std::to_string(i) + " is not certifiable");
        got = *r;
        break;
      }
    }
    if (!claim_covers(s.val, got))
      return fail(why, "step " + std::to_string(i) + " claim " + s.val.to_string() +
                           " does not cover the derived value");
    // Continue with the *claimed* value: it over-approximates the derived
    // one, so downstream checks stay sound while matching the analyzer.
    stack.push_back(Derived{s.val.lo, s.val.hi, s.val.mod, s.val.rem, false});
  }
  if (stack.size() != 1) return fail(why, "derivation does not reduce to one value");
  *root = steps.back().val;
  return true;
}

/// Separation of two well-formed root claims: disjoint intervals, or residue
/// classes incompatible modulo gcd (gcd(0, m) = m covers constants).
bool roots_separated(const CertVal& a, const CertVal& b) {
  if (a.hi < b.lo || b.hi < a.lo) return true;
  const i128 g = gcd_i128(a.mod, b.mod);
  if (g == 0) return a.rem != b.rem;
  if (g == 1) return false;
  return floor_rem(a.rem, g) != floor_rem(b.rem, g);
}

// --- wire form ---

constexpr uint32_t kCertMagic = 0x43584449;  // "IDXC"
constexpr uint8_t kCertVersion = 1;
constexpr std::size_t kMaxSteps = 65536;

void put_u8(std::vector<std::byte>& out, uint8_t v) {
  out.push_back(static_cast<std::byte>(v));
}

void put_u32(std::vector<std::byte>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) put_u8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::byte>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) put_u8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void put_i64(std::vector<std::byte>& out, int64_t v) {
  put_u64(out, static_cast<uint64_t>(v));
}

uint64_t cert_checksum(const std::byte* data, std::size_t size) {
  uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<uint64_t>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

/// Bounds-checked little-endian reader; any structural violation flips
/// `ok` and the caller returns nullopt.
struct CertReader {
  const std::byte* data;
  std::size_t size;
  std::size_t pos = 0;
  bool ok = true;

  uint8_t u8() {
    if (pos + 1 > size) {
      ok = false;
      return 0;
    }
    return static_cast<uint8_t>(data[pos++]);
  }
  uint32_t u32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(u8()) << (8 * i);
    return v;
  }
  uint64_t u64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(u8()) << (8 * i);
    return v;
  }
  int64_t i64() { return static_cast<int64_t>(u64()); }
};

void put_steps(std::vector<std::byte>& out, const std::vector<CertStep>& steps) {
  put_u32(out, static_cast<uint32_t>(steps.size()));
  for (const CertStep& s : steps) {
    put_u8(out, static_cast<uint8_t>(s.op));
    put_i64(out, s.value);
    put_i64(out, s.val.lo);
    put_i64(out, s.val.hi);
    put_i64(out, s.val.mod);
    put_i64(out, s.val.rem);
  }
}

bool get_steps(CertReader& r, std::vector<CertStep>& steps) {
  const uint32_t n = r.u32();
  if (!r.ok || n > kMaxSteps) return false;
  steps.resize(n);
  for (CertStep& s : steps) {
    const uint8_t op = r.u8();
    if (op > static_cast<uint8_t>(CertOp::kNeg)) return false;
    s.op = static_cast<CertOp>(op);
    s.value = r.i64();
    s.val.lo = r.i64();
    s.val.hi = r.i64();
    s.val.mod = r.i64();
    s.val.rem = r.i64();
  }
  return r.ok;
}

}  // namespace

std::string CertVal::to_string() const {
  if (mod == 0) return "{" + std::to_string(rem) + "}";
  std::string s = "[" + std::to_string(lo) + "," + std::to_string(hi) + "]";
  if (mod > 1) s += " mod " + std::to_string(mod) + " == " + std::to_string(rem);
  return s;
}

std::string Certificate::to_string() const {
  switch (kind) {
    case CertKind::kFieldsDisjoint: return "cert(fields-disjoint)";
    case CertKind::kDistinctCollections: return "cert(distinct-collections)";
    case CertKind::kReadOnly: return "cert(read-only)";
    case CertKind::kImageSeparation:
      break;
  }
  std::string s = "cert(image-separation component=" + std::to_string(component);
  if (!lhs.empty()) s += " lhs=" + lhs.back().val.to_string();
  if (!rhs.empty()) s += " rhs=" + rhs.back().val.to_string();
  return s + ")";
}

bool CertificateChecker::validate(const Certificate& cert, const CertSide& a,
                                  const CertSide& b, std::string* why) {
  switch (cert.kind) {
    case CertKind::kFieldsDisjoint:
      if ((a.field_mask & b.field_mask) != 0)
        return fail(why, "field masks overlap");
      return true;
    case CertKind::kDistinctCollections:
      if (a.collection_uid == b.collection_uid)
        return fail(why, "arguments name the same collection");
      return true;
    case CertKind::kReadOnly:
      if (privilege_writes(a.priv) || privilege_writes(b.priv))
        return fail(why, "a side writes");
      return true;
    case CertKind::kImageSeparation:
      break;
  }
  if (a.functor == nullptr || b.functor == nullptr ||
      !a.functor->is_symbolic() || !b.functor->is_symbolic())
    return fail(why, "image separation requires symbolic functors");
  if (a.partition_uid != b.partition_uid)
    return fail(why, "image separation requires one common partition");
  if (!a.partition_disjoint || !b.partition_disjoint)
    return fail(why, "image separation requires a disjoint partition");
  const auto c = static_cast<std::size_t>(cert.component);
  if (c >= a.functor->exprs().size() || c >= b.functor->exprs().size())
    return fail(why, "certificate component out of range");
  CertVal root_a, root_b;
  if (!verify_derivation(cert.lhs, *a.functor->exprs()[c], a.domain_bounds,
                         &root_a, why))
    return false;
  if (!verify_derivation(cert.rhs, *b.functor->exprs()[c], b.domain_bounds,
                         &root_b, why))
    return false;
  if (!roots_separated(root_a, root_b))
    return fail(why, "root values " + root_a.to_string() + " and " +
                         root_b.to_string() + " are not separated");
  return true;
}

std::vector<std::byte> encode_certificate(const Certificate& cert) {
  std::vector<std::byte> out;
  out.reserve(16 + 41 * (cert.lhs.size() + cert.rhs.size()));
  put_u32(out, kCertMagic);
  put_u8(out, kCertVersion);
  put_u8(out, static_cast<uint8_t>(cert.kind));
  put_u32(out, cert.component);
  put_steps(out, cert.lhs);
  put_steps(out, cert.rhs);
  put_u64(out, cert_checksum(out.data(), out.size()));
  return out;
}

std::optional<Certificate> decode_certificate(const std::byte* data,
                                              std::size_t size) {
  if (data == nullptr || size < 8) return std::nullopt;
  const uint64_t want = cert_checksum(data, size - 8);
  CertReader tail{data, size, size - 8, true};
  if (tail.u64() != want) return std::nullopt;
  CertReader r{data, size - 8, 0, true};
  if (r.u32() != kCertMagic) return std::nullopt;
  if (r.u8() != kCertVersion) return std::nullopt;
  const uint8_t kind = r.u8();
  if (!r.ok || kind > static_cast<uint8_t>(CertKind::kImageSeparation))
    return std::nullopt;
  Certificate cert;
  cert.kind = static_cast<CertKind>(kind);
  cert.component = r.u32();
  if (!get_steps(r, cert.lhs) || !get_steps(r, cert.rhs)) return std::nullopt;
  if (r.pos != r.size) return std::nullopt;  // trailing bytes
  return cert;
}

}  // namespace idxl
