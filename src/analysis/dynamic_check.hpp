#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "analysis/witness.hpp"
#include "functor/projection.hpp"
#include "region/accessor.hpp"
#include "support/bitvector.hpp"

namespace idxl {

/// One region argument of an index launch, flattened for the safety
/// analysis. The runtime builds these from its RegionRequirements; keeping
/// the analysis independent of runtime types lets it be unit-tested (and
/// benchmarked for Tables 2/3) in isolation.
struct CheckArg {
  const ProjectionFunctor* functor = nullptr;
  Rect color_space;               ///< partition's (dense) color space
  bool partition_disjoint = false;
  uint32_t partition_uid = 0;     ///< identity of the partition object
  uint32_t collection_uid = 0;    ///< identity of the underlying collection (tree)
  uint64_t field_mask = ~uint64_t{0};  ///< fields touched; disjoint masks never interfere
  Privilege priv = Privilege::kRead;
  ReductionOp redop = ReductionOp::kNone;
};

/// Outcome of a dynamic check run.
struct DynamicCheckResult {
  bool safe = true;
  uint64_t points_evaluated = 0;  ///< functor evaluations performed
  uint64_t bitmask_bits = 0;      ///< total bitmask storage initialized (O(|P|))
  /// On failure: the concrete colliding pair (reconstructed by re-scanning
  /// the already-probed prefix, so the passing fast path pays nothing).
  /// arg indices refer to the `args` span passed to dynamic_cross_check;
  /// both are 0 for dynamic_self_check. Reconstruction evaluations are
  /// diagnostics and are not counted in points_evaluated.
  std::optional<RaceWitness> witness;
};

/// The paper's Listing 3: is `f` injective over `domain`, with colors
/// linearized through `color_space`? Out-of-bounds colors are skipped, as in
/// the listing (they are caught later as bad region requirements). Exits
/// early on the first duplicate.
DynamicCheckResult dynamic_self_check(const ProjectionFunctor& f,
                                      const Rect& color_space, const Domain& domain);

/// The multi-argument generalization of §4: one bitmask per distinct
/// partition, all write/reduce arguments probe-and-set before read-only
/// arguments probe (without setting), so every write-write and write-read
/// image collision is caught in linear time. Arguments with read privilege
/// and no writer on their partition are skipped entirely.
///
/// Returns safe=false on the first conflict. Reductions are treated as
/// writes, per the paper's simplification.
DynamicCheckResult dynamic_cross_check(std::span<const CheckArg> args,
                                       const Domain& domain);

}  // namespace idxl
