#pragma once

#include <functional>
#include <string>

#include "analysis/dynamic_check.hpp"
#include "analysis/static_analysis.hpp"

namespace idxl {

class Profiler;

/// Knobs for the hybrid analysis.
struct AnalysisOptions {
  /// When false, arguments the static analyzer can't resolve are *trusted*
  /// (the paper: checks "can be disabled for production runs to eliminate
  /// any overheads; correct execution of the program does not rely on the
  /// result of the safety analysis").
  bool enable_dynamic_checks = true;
  /// Enable the extended static classifier (modular and monotone-quadratic
  /// families; see static_injectivity). Off by default to match the paper's
  /// constant/identity/affine baseline.
  bool extended_static = false;
  /// When set (and enabled), the analysis records `safety-check/static` and
  /// `safety-check/dynamic` spans so profiles attribute check time to the
  /// phase that spent it.
  Profiler* profiler = nullptr;
};

/// How a launch's safety was established (or refuted).
enum class SafetyOutcome : uint8_t {
  kSafeStatic,    ///< every condition discharged at "compile time"
  kSafeDynamic,   ///< static left residual args; dynamic check passed
  kSafeUnchecked, ///< residual args, but dynamic checks disabled — trusted
  kUnsafe,        ///< a conflict was proven (statically or dynamically)
};

struct SafetyReport {
  SafetyOutcome outcome = SafetyOutcome::kSafeStatic;
  uint64_t dynamic_points = 0;   ///< functor evaluations spent in dynamic checks
  uint64_t dynamic_bits = 0;     ///< bitmask bits initialized
  std::string reason;            ///< human-readable diagnosis when kUnsafe
  /// Indices of arguments the static analysis could not discharge (the set
  /// handed to — or, with checks disabled, *owed to* — the dynamic check).
  /// A compiler uses this to emit the Listing-3 guard for exactly these.
  std::vector<uint32_t> residual_args;

  bool safe() const { return outcome != SafetyOutcome::kUnsafe; }
  bool used_dynamic() const { return outcome == SafetyOutcome::kSafeDynamic; }
};

/// The full §3 non-interference decision for one index launch, §4-style:
/// self-checks and cross-checks are first attempted statically; residual
/// arguments are handed to the linear-time dynamic bitmask check.
///
/// `pair_independent(i, j)` answers cross-check rule 2 — whether args i and
/// j name partitions of collections that are themselves disjoint. Pass
/// nullptr to fall back to comparing CheckArg::collection_uid.
SafetyReport analyze_launch_safety(
    std::span<const CheckArg> args, const Domain& domain,
    const AnalysisOptions& options = {},
    const std::function<bool(std::size_t, std::size_t)>& pair_independent = nullptr);

}  // namespace idxl
