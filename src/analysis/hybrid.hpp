#pragma once

#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "analysis/dynamic_check.hpp"
#include "analysis/static_analysis.hpp"

namespace idxl {

class Profiler;
class VerdictCache;

/// Knobs for the hybrid analysis.
struct AnalysisOptions {
  /// When false, arguments the static analyzer can't resolve are *trusted*
  /// (the paper: checks "can be disabled for production runs to eliminate
  /// any overheads; correct execution of the program does not rely on the
  /// result of the safety analysis").
  bool enable_dynamic_checks = true;
  /// Enable the extended static tier — the abstract interpreter over the
  /// interval × congruence domains (analysis/absint.hpp), deciding modular,
  /// strided, composed and multi-dimensional functor families the base
  /// classifier leaves to the dynamic check. Off by default to match the
  /// paper's constant/identity/affine baseline.
  bool extended_static = false;
  /// When set (and enabled), the analysis records `safety-check/static`,
  /// `safety-check/dynamic` and `safety-check/cache` spans so profiles
  /// attribute check time to the phase that spent it.
  Profiler* profiler = nullptr;
  /// Launch-site verdict cache: repeated launches with the same functor
  /// fingerprints, domain and privilege vector reuse the prior verdict and
  /// skip re-analysis entirely. nullptr disables caching.
  VerdictCache* verdict_cache = nullptr;
};

/// How a launch's safety was established (or refuted).
enum class SafetyOutcome : uint8_t {
  kSafeStatic,    ///< every condition discharged at "compile time"
  kSafeDynamic,   ///< static left residual args; dynamic check passed
  kSafeUnchecked, ///< residual args, but dynamic checks disabled — trusted
  kUnsafe,        ///< a conflict was proven (statically or dynamically)
};

struct SafetyReport {
  SafetyOutcome outcome = SafetyOutcome::kSafeStatic;
  uint64_t dynamic_points = 0;   ///< functor evaluations spent in dynamic checks
  uint64_t dynamic_bits = 0;     ///< bitmask bits initialized
  std::string reason;            ///< human-readable diagnosis when kUnsafe
  /// Indices of arguments the static analysis could not discharge (the set
  /// handed to — or, with checks disabled, *owed to* — the dynamic check).
  /// A compiler uses this to emit the Listing-3 guard for exactly these.
  std::vector<uint32_t> residual_args;
  /// Concrete racing pair backing an kUnsafe outcome, from either analysis
  /// tier: two launch points whose functors select the same color with
  /// interfering privileges. Arg indices refer to the analyzed `args` span.
  /// Absent for safe outcomes (and for the aliased-partition /
  /// interfering-partitions refutations, which need no point pair).
  std::optional<RaceWitness> witness;
  /// True when this report was served from the verdict cache (dynamic_points
  /// and dynamic_bits are then 0 — no work was redone).
  bool cache_hit = false;
  /// Cumulative hit/miss counters of the attached verdict cache at the time
  /// of this analysis (both 0 when no cache was attached).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;

  bool safe() const { return outcome != SafetyOutcome::kUnsafe; }
  bool used_dynamic() const { return outcome == SafetyOutcome::kSafeDynamic; }
};

/// Launch-site verdict cache. The safety verdict for an index launch is a
/// pure function of (functor fingerprints, launch domain, privilege vector,
/// partition identities, analysis options) — every bench/fig* workload
/// re-launches the same handful of sites hundreds of times, so re-running
/// even the static tier per launch is pure overhead (TaskTorrent's
/// observation that per-launch analysis cost is what separates toy runtimes
/// from usable ones). Keys are full-fidelity serializations, not hashes:
/// a hash collision would silently reuse the wrong verdict, which is a
/// soundness bug, so we spend the memory instead. Thread-safe (sharded
/// runtimes share one cache across shard threads).
class VerdictCache {
 public:
  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t uncacheable = 0;  ///< lookups skipped (opaque functor present)
  };

  /// Cache key for a launch site, or nullopt when any functor is opaque
  /// (no finite fingerprint exists — such launches are analyzed afresh).
  static std::optional<std::string> key(std::span<const CheckArg> args,
                                        const Domain& domain,
                                        const AnalysisOptions& options);

  std::optional<SafetyReport> lookup(const std::string& k);
  void insert(const std::string& k, const SafetyReport& report);
  void note_uncacheable();
  void clear();
  std::size_t size() const;
  Counters counters() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, SafetyReport> map_;
  Counters counters_;
};

/// The full §3 non-interference decision for one index launch, §4-style:
/// self-checks and cross-checks are first attempted statically; residual
/// arguments are handed to the linear-time dynamic bitmask check.
///
/// `pair_independent(i, j)` answers cross-check rule 2 — whether args i and
/// j name partitions of collections that are themselves disjoint. Pass
/// nullptr to fall back to comparing CheckArg::collection_uid.
SafetyReport analyze_launch_safety(
    std::span<const CheckArg> args, const Domain& domain,
    const AnalysisOptions& options = {},
    const std::function<bool(std::size_t, std::size_t)>& pair_independent = nullptr);

}  // namespace idxl
