#include "analysis/static_analysis.hpp"

#include <numeric>

#include "analysis/patterns.hpp"

namespace idxl {

namespace {

/// Is the map diagonal (square, off-diagonal coefficients all zero)? For a
/// diagonal affine map on a dense domain the image is a lattice box whose
/// bounding rect we can compute exactly.
bool is_diagonal(const AffineMap& m) {
  if (m.in_dim != m.out_dim) return false;
  for (int i = 0; i < m.out_dim; ++i)
    for (int j = 0; j < m.in_dim; ++j)
      if (i != j &&
          m.a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] != 0)
        return false;
  return true;
}

Rect image_box(const AffineMap& m, const Rect& dom) {
  Rect r;
  r.lo.dim = r.hi.dim = m.out_dim;
  for (int i = 0; i < m.out_dim; ++i) {
    const int64_t a = m.a[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
    const int64_t b = m.b[static_cast<std::size_t>(i)];
    const int64_t v0 = a * dom.lo[i] + b;
    const int64_t v1 = a * dom.hi[i] + b;
    r.lo[i] = std::min(v0, v1);
    r.hi[i] = std::max(v0, v1);
  }
  return r;
}

}  // namespace

namespace {

/// Extended-mode analysis of 1-D symbolic functors over dense 1-D domains.
Tri extended_injectivity_1d(const Expr& e, int64_t lo, int64_t hi) {
  const int64_t extent = hi - lo + 1;

  if (auto m = match_modlinear(e)) {
    if (m->a == 0) return Tri::kNo;  // constant under the mod
    const int64_t n = std::abs(m->n);
    const int64_t g = std::gcd(std::abs(m->a), n);
    const int64_t period = n / g;  // least d > 0 with a·d ≡ 0 (mod n)
    // No two domain points are congruent -> C remainders all differ.
    if (extent <= period) return Tri::kYes;
    // Witness pair (i, i + period) exists; equal C remainders require the
    // two values to share a sign, which uniform sign over the whole value
    // range guarantees.
    const int64_t v_lo = m->a * lo + m->b;
    const int64_t v_hi = m->a * hi + m->b;
    if ((v_lo >= 0 && v_hi >= 0) || (v_lo <= 0 && v_hi <= 0)) return Tri::kNo;
    return Tri::kUnknown;
  }

  if (auto p = match_poly1(e)) {
    if (p->q == 0) return Tri::kUnknown;  // affine: handled by the main path
    // Strictly monotone sequence => injective. The finite difference
    // v(i+1) - v(i) = q(2i+1) + a is linear in i: check both endpoints.
    if (extent <= 1) return Tri::kYes;
    const int64_t d_first = p->q * (2 * lo + 1) + p->a;
    const int64_t d_last = p->q * (2 * (hi - 1) + 1) + p->a;
    if ((d_first > 0 && d_last > 0) || (d_first < 0 && d_last < 0)) return Tri::kYes;
    return Tri::kUnknown;
  }
  return Tri::kUnknown;
}

}  // namespace

Tri static_injectivity(const ProjectionFunctor& f, const Domain& domain,
                       bool extended) {
  if (domain.volume() <= 1) return Tri::kYes;  // at most one task: trivially injective
  auto map = extract_affine_map(f, domain.dim());
  if (!map) {
    if (extended && f.is_symbolic() && f.output_dim() == 1 && domain.dense() &&
        domain.dim() == 1) {
      return extended_injectivity_1d(*f.exprs()[0], domain.bounds().lo[0],
                                     domain.bounds().hi[0]);
    }
    return Tri::kUnknown;
  }

  if (map->is_constant()) return Tri::kNo;
  if (map->is_identity()) return Tri::kYes;
  if (map->column_rank() == map->in_dim) return Tri::kYes;

  // Rank-deficient: injectivity can only hold if the domain never contains
  // two points separated by a kernel vector. Look for a witness collision.
  if (auto v = map->small_null_vector()) {
    bool collides = false;
    domain.for_each([&](const Point& p) {
      if (!collides && domain.contains(p + *v)) collides = true;
    });
    if (collides) return Tri::kNo;
  }
  return Tri::kUnknown;
}

Tri static_images_disjoint(const ProjectionFunctor& f, const ProjectionFunctor& g,
                           const Domain& domain, bool extended) {
  if (domain.empty()) return Tri::kYes;
  if (f.definitely_equal(g)) return Tri::kNo;  // identical images, nonempty

  auto fm = extract_affine_map(f, domain.dim());
  auto gm = extract_affine_map(g, domain.dim());
  if (!fm || !gm) return Tri::kUnknown;
  if (fm->out_dim != gm->out_dim) return Tri::kYes;  // disjoint by dimensionality

  if (domain.dense() && is_diagonal(*fm) && is_diagonal(*gm)) {
    const Rect fi = image_box(*fm, domain.bounds());
    const Rect gi = image_box(*gm, domain.bounds());
    if (!fi.overlaps(gi)) return Tri::kYes;
  }

  // Extended same-slope rule (1-D): a·i+b1 meets a·j+b2 iff a | (b2-b1)
  // and the index shift (b2-b1)/a fits inside the (dense) domain.
  if (extended && domain.dense() && domain.dim() == 1 && fm->out_dim == 1) {
    const int64_t a1 = fm->a[0][0], a2 = gm->a[0][0];
    if (a1 == a2 && a1 != 0) {
      const int64_t delta = gm->b[0] - fm->b[0];
      if (delta % a1 != 0) return Tri::kYes;  // different residue classes
      const int64_t shift = delta / a1;
      const int64_t extent = domain.bounds().hi[0] - domain.bounds().lo[0] + 1;
      return std::abs(shift) <= extent - 1 ? Tri::kNo : Tri::kYes;
    }
  }
  return Tri::kUnknown;
}

}  // namespace idxl
