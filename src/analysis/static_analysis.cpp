#include "analysis/static_analysis.hpp"

#include <numeric>
#include <vector>

#include "analysis/absint.hpp"

namespace idxl {

namespace {

/// Is the map diagonal (square, off-diagonal coefficients all zero)? For a
/// diagonal affine map on a dense domain the image is a lattice box whose
/// bounding rect we can compute exactly.
bool is_diagonal(const AffineMap& m) {
  if (m.in_dim != m.out_dim) return false;
  for (int i = 0; i < m.out_dim; ++i)
    for (int j = 0; j < m.in_dim; ++j)
      if (i != j &&
          m.a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] != 0)
        return false;
  return true;
}

std::optional<Rect> image_box(const AffineMap& m, const Rect& dom) {
  Rect r;
  r.lo.dim = r.hi.dim = m.out_dim;
  for (int i = 0; i < m.out_dim; ++i) {
    const int64_t a = m.a[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
    const int64_t b = m.b[static_cast<std::size_t>(i)];
    const auto m0 = checked_mul(a, dom.lo[i]);
    const auto m1 = checked_mul(a, dom.hi[i]);
    const auto v0 = m0 ? checked_add(*m0, b) : std::nullopt;
    const auto v1 = m1 ? checked_add(*m1, b) : std::nullopt;
    if (!v0 || !v1) return std::nullopt;
    r.lo[i] = std::min(*v0, *v1);
    r.hi[i] = std::max(*v0, *v1);
  }
  return r;
}

/// First two points of a domain with volume >= 2, in enumeration order.
void first_two_points(const Domain& d, Point* a, Point* b) {
  if (d.dense()) {
    auto it = d.bounds().begin();
    *a = *it;
    ++it;
    *b = *it;
  } else {
    const auto pts = d.points();
    *a = pts[0];
    *b = pts[1];
  }
}

void fill_witness(RaceWitness* witness, const ProjectionFunctor& f,
                  const Point& p1, const Point& p2) {
  if (!witness) return;
  witness->arg_i = witness->arg_j = 0;
  witness->p1 = p1;
  witness->p2 = p2;
  witness->color = f(p1);
}

/// Candidate launch coordinates along `axis` for collision probing at
/// separation `d`: windows at both ends of the valid range [lo, hi-d],
/// evenly spaced interior samples, and — for quadratic components — the
/// algebraically solved collision point q·(2i+d) + a = 0.
std::vector<int64_t> probe_candidates(const std::vector<const Expr*>& comps,
                                      int axis, int64_t lo, int64_t hi,
                                      int64_t d) {
  std::vector<int64_t> cands;
  const int64_t last = hi - d;
  if (last < lo) return cands;
  const auto push = [&](__int128 i) {
    if (i >= lo && i <= last) cands.push_back(static_cast<int64_t>(i));
  };
  const __int128 span = static_cast<__int128>(last) - lo + 1;
  if (span <= 48) {
    for (int64_t i = lo; i <= last; ++i) cands.push_back(i);
  } else {
    for (int64_t j = 0; j < 16; ++j) push(static_cast<__int128>(lo) + j);
    for (int64_t j = 0; j < 16; ++j) push(static_cast<__int128>(last) - j);
    for (int64_t j = 1; j < 16; ++j)
      push(static_cast<__int128>(lo) + span * j / 16);
  }
  for (const Expr* e : comps) {
    const auto q = match_quad_1d(*e, axis);
    if (q && q->q != 0) {
      // q·(i+d)² + a·(i+d) = q·i² + a·i  ⇔  q·(2i + d) + a = 0.
      const __int128 num = -(static_cast<__int128>(q->q) * d + q->a);
      const __int128 den = static_cast<__int128>(2) * q->q;
      const __int128 i0 = num / den;
      push(i0 - 1);
      push(i0);
      push(i0 + 1);
    }
  }
  return cands;
}

/// Try to verify a concrete collision along `axis` at a separation allowed
/// by `ds`. Only a real, re-evaluated collision of the *full* functor
/// produces true — guessing wrong just leaves the verdict unknown.
bool probe_axis_collision(const ProjectionFunctor& f,
                          const std::vector<const Expr*>& comps, int axis,
                          const Rect& bounds, const DeltaSet& ds,
                          RaceWitness* witness) {
  if (ds.stride <= 0) return false;
  const int64_t lo = bounds.lo[axis];
  const int64_t hi = bounds.hi[axis];
  const int64_t limit = std::min(ds.max_delta, hi - lo);
  int64_t d = ds.stride;
  for (int tried = 0; tried < 8 && d <= limit; ++tried) {
    for (const int64_t i : probe_candidates(comps, axis, lo, hi, d)) {
      Point p = bounds.lo;
      p[axis] = i;
      Point q = p;
      q[axis] = i + d;
      if (f(p) == f(q)) {
        fill_witness(witness, f, p, q);
        return true;
      }
    }
    const auto next = checked_add(d, ds.stride);
    if (!next) break;
    d = *next;
  }
  return false;
}

/// Abstract-interpretation injectivity for symbolic functors over dense
/// domains: decompose by launch axis, prove each axis via empty collision
/// delta sets, refute via verified probing.
Tri absint_injectivity(const ProjectionFunctor& f, const Domain& domain,
                       RaceWitness* witness) {
  const Rect& bounds = domain.bounds();
  const int dim = bounds.dim();
  const auto& exprs = f.exprs();
  if (exprs.empty()) return Tri::kUnknown;

  for (const auto& e : exprs)
    if (e->max_coord() >= dim) return Tri::kUnknown;  // not evaluable on D

  uint32_t nontrivial = 0;
  for (int axis = 0; axis < dim; ++axis)
    if (bounds.hi[axis] > bounds.lo[axis]) nontrivial |= 1u << axis;
  if (nontrivial == 0) return Tri::kYes;  // single point

  std::vector<uint32_t> axes(exprs.size());
  for (std::size_t i = 0; i < exprs.size(); ++i)
    axes[i] = collect_axes(*exprs[i]) & nontrivial;

  // A nontrivial axis no component reads: two points differing only there
  // share every output component.
  for (int axis = 0; axis < dim; ++axis) {
    if (!(nontrivial & (1u << axis))) continue;
    bool used = false;
    for (const uint32_t a : axes) used |= (a & (1u << axis)) != 0;
    if (!used) {
      Point p = bounds.lo;
      Point q = p;
      q[axis] += 1;
      if (f(p) == f(q)) {
        fill_witness(witness, f, p, q);
        return Tri::kNo;
      }
      return Tri::kUnknown;  // defensive: cannot happen for symbolic f
    }
  }

  // The per-axis decomposition needs every component to depend on at most
  // one nontrivial axis; mixed components (i0 + i1, ...) stay with the
  // affine classifier / dynamic check.
  for (const uint32_t a : axes)
    if (__builtin_popcount(a) > 1) return Tri::kUnknown;

  // Axis-wise proof: two distinct points differ in some nontrivial axis;
  // if for every allowed separation along that axis some component on it
  // must change, the output tuples differ.
  for (int axis = 0; axis < dim; ++axis) {
    if (!(nontrivial & (1u << axis))) continue;
    std::vector<const Expr*> comps;
    DeltaSet ds = DeltaSet::all();
    for (std::size_t i = 0; i < exprs.size(); ++i) {
      if (axes[i] != (1u << axis)) continue;
      comps.push_back(exprs[i].get());
      ds = delta_intersect(
          ds, collision_deltas(*exprs[i], axis, bounds.lo[axis], bounds.hi[axis]));
    }
    const int64_t extent = bounds.hi[axis] - bounds.lo[axis] + 1;
    if (ds.empty_within(extent)) continue;  // axis proven injective
    if (probe_axis_collision(f, comps, axis, bounds, ds, witness))
      return Tri::kNo;
    return Tri::kUnknown;
  }
  return Tri::kYes;
}

/// Sample both images at up to 32 domain points each (both ends of the
/// enumeration order) and look for a concrete f(p1) == g(p2) collision.
bool probe_images_overlap(const ProjectionFunctor& f, const ProjectionFunctor& g,
                          const Domain& domain, RaceWitness* witness) {
  constexpr int64_t kEnd = 16;
  std::vector<Point> samples;
  const int64_t vol = domain.volume();
  if (domain.dense()) {
    const Rect& b = domain.bounds();
    if (vol <= 2 * kEnd) {
      for (const Point& p : b) samples.push_back(p);
    } else {
      for (int64_t j = 0; j < kEnd; ++j) samples.push_back(b.delinearize(j));
      for (int64_t j = 0; j < kEnd; ++j) samples.push_back(b.delinearize(vol - 1 - j));
    }
  } else {
    const auto pts = domain.points();
    if (vol <= 2 * kEnd) {
      samples = pts;
    } else {
      for (int64_t j = 0; j < kEnd; ++j) samples.push_back(pts[static_cast<std::size_t>(j)]);
      for (int64_t j = 0; j < kEnd; ++j)
        samples.push_back(pts[static_cast<std::size_t>(vol - 1 - j)]);
    }
  }
  std::vector<Point> fcolors;
  fcolors.reserve(samples.size());
  for (const Point& p : samples) fcolors.push_back(f(p));
  for (const Point& q : samples) {
    const Point gc = g(q);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if (fcolors[i] == gc) {
        if (witness) {
          witness->arg_i = 0;
          witness->arg_j = 1;
          witness->p1 = samples[i];
          witness->p2 = q;
          witness->color = gc;
        }
        return true;
      }
    }
  }
  return false;
}

}  // namespace

Tri static_injectivity(const ProjectionFunctor& f, const Domain& domain,
                       bool extended, RaceWitness* witness) {
  if (domain.volume() <= 1) return Tri::kYes;  // at most one task: trivially injective
  auto map = extract_affine_map(f, domain.dim());
  if (!map) {
    if (extended && f.is_symbolic() && domain.dense())
      return absint_injectivity(f, domain, witness);
    return Tri::kUnknown;
  }

  if (map->is_constant()) {
    Point p1, p2;
    first_two_points(domain, &p1, &p2);
    fill_witness(witness, f, p1, p2);
    return Tri::kNo;
  }
  if (map->is_identity()) return Tri::kYes;
  if (map->column_rank() == map->in_dim) return Tri::kYes;

  // Rank-deficient: injectivity can only hold if the domain never contains
  // two points separated by a kernel vector. Look for a witness collision.
  if (auto v = map->small_null_vector()) {
    bool collides = false;
    Point wp;
    domain.for_each([&](const Point& p) {
      if (!collides && domain.contains(p + *v)) {
        collides = true;
        wp = p;
      }
    });
    if (collides) {
      fill_witness(witness, f, wp, wp + *v);
      return Tri::kNo;
    }
  }
  return Tri::kUnknown;
}

Tri static_images_disjoint(const ProjectionFunctor& f, const ProjectionFunctor& g,
                           const Domain& domain, bool extended,
                           RaceWitness* witness) {
  if (domain.empty()) return Tri::kYes;
  if (f.output_dim() != g.output_dim()) return Tri::kYes;  // disjoint by arity
  if (f.definitely_equal(g)) {
    // Identical functors: any point is a cross-argument collision.
    Point p1, p2;
    if (domain.dense()) {
      p1 = p2 = domain.bounds().lo;
    } else {
      p1 = p2 = domain.points()[0];
    }
    if (witness) {
      witness->arg_i = 0;
      witness->arg_j = 1;
      witness->p1 = p1;
      witness->p2 = p2;
      witness->color = f(p1);
    }
    return Tri::kNo;
  }

  auto fm = extract_affine_map(f, domain.dim());
  auto gm = extract_affine_map(g, domain.dim());

  if (fm && gm && domain.dense() && is_diagonal(*fm) && is_diagonal(*gm)) {
    const auto fi = image_box(*fm, domain.bounds());
    const auto gi = image_box(*gm, domain.bounds());
    if (fi && gi && !fi->overlaps(*gi)) return Tri::kYes;
  }

  if (!extended) return Tri::kUnknown;

  // Abstract images: one separated component (disjoint value intervals or
  // incompatible residue classes, e.g. 2i vs 2i+1) separates the tuples.
  {
    const auto fa = abs_image(f, domain);
    const auto ga = abs_image(g, domain);
    if (fa && ga && fa->size() == ga->size()) {
      for (std::size_t i = 0; i < fa->size(); ++i)
        if (abs_disjoint((*fa)[i], (*ga)[i])) return Tri::kYes;
    }
  }

  // Same-slope rule (1-D): a·i+b1 meets a·j+b2 iff a | (b2-b1) and the
  // index shift (b2-b1)/a fits inside the (dense) domain.
  if (fm && gm && domain.dense() && domain.dim() == 1 && fm->out_dim == 1) {
    const int64_t a1 = fm->a[0][0], a2 = gm->a[0][0];
    if (a1 == a2 && a1 != 0) {
      const auto delta = checked_sub(gm->b[0], fm->b[0]);
      if (!delta) return Tri::kUnknown;
      if (*delta % a1 != 0) return Tri::kYes;  // different residue classes
      const int64_t shift = *delta / a1;
      const int64_t lo = domain.bounds().lo[0];
      const int64_t extent = domain.bounds().hi[0] - lo + 1;
      if (std::abs(shift) > extent - 1) return Tri::kYes;
      // f(i + shift) = a·i + b2 = g(i): a concrete overlap pair.
      const Point pg = Point::p1(shift >= 0 ? lo : lo - shift);
      const Point pf = Point::p1(pg[0] + shift);
      if (witness) {
        witness->arg_i = 0;
        witness->arg_j = 1;
        witness->p1 = pf;
        witness->p2 = pg;
        witness->color = f(pf);
      }
      return Tri::kNo;
    }
  }

  if (probe_images_overlap(f, g, domain, witness)) return Tri::kNo;
  return Tri::kUnknown;
}

}  // namespace idxl
