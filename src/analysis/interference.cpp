#include "analysis/interference.hpp"

#include <algorithm>

#include "analysis/absint.hpp"

namespace idxl {

namespace {

/// Pair probes beyond this many functor evaluations are not worth the issue
/// latency; the dynamic tracker handles those launches instead.
constexpr int64_t kMaxProbePoints = 1 << 16;

CertOp cert_op_of(ExprKind k) {
  switch (k) {
    case ExprKind::kConst: return CertOp::kConst;
    case ExprKind::kCoord: return CertOp::kCoord;
    case ExprKind::kAdd: return CertOp::kAdd;
    case ExprKind::kSub: return CertOp::kSub;
    case ExprKind::kMul: return CertOp::kMul;
    case ExprKind::kDiv: return CertOp::kDiv;
    case ExprKind::kMod: return CertOp::kMod;
    case ExprKind::kNeg: return CertOp::kNeg;
  }
  return CertOp::kConst;
}

/// abs_eval with a flight recorder: appends one postfix CertStep per
/// subexpression, claiming exactly the abstract value the interpreter
/// computed — the derivation the independent checker then re-validates.
std::optional<AbsVal> record_eval(const Expr& e, const Rect& bounds,
                                  std::vector<CertStep>& steps) {
  std::optional<AbsVal> v;
  int64_t leaf_value = 0;
  switch (e.kind) {
    case ExprKind::kConst:
      v = abs_const(e.value);
      leaf_value = e.value;
      break;
    case ExprKind::kCoord: {
      const auto axis = e.value;
      if (axis < 0 || axis >= bounds.dim()) return std::nullopt;
      v = abs_range(bounds.lo[static_cast<int>(axis)],
                    bounds.hi[static_cast<int>(axis)]);
      leaf_value = e.value;
      break;
    }
    case ExprKind::kNeg: {
      const auto a = record_eval(*e.lhs, bounds, steps);
      if (!a) return std::nullopt;
      v = abs_neg(*a);
      break;
    }
    default: {
      const auto a = record_eval(*e.lhs, bounds, steps);
      if (!a) return std::nullopt;
      const auto b = record_eval(*e.rhs, bounds, steps);
      if (!b) return std::nullopt;
      switch (e.kind) {
        case ExprKind::kAdd: v = abs_add(*a, *b); break;
        case ExprKind::kSub: v = abs_sub(*a, *b); break;
        case ExprKind::kMul: v = abs_mul(*a, *b); break;
        case ExprKind::kDiv: v = abs_div(*a, *b); break;
        case ExprKind::kMod: v = abs_mod(*a, *b); break;
        default: return std::nullopt;
      }
      break;
    }
  }
  if (!v) return std::nullopt;
  steps.push_back(
      {cert_op_of(e.kind), leaf_value, CertVal{v->lo, v->hi, v->mod, v->rem}});
  return v;
}

/// Wrap a fact-kind certificate, re-validate it through the independent
/// checker, and only then return the kDisjoint result: the runtime refuses
/// uncertified skips, including its own.
InterferenceResult certified(Certificate cert, const LaunchArgSummary& a,
                             const LaunchArgSummary& b, std::string reason) {
  InterferenceResult r;
  std::string why;
  if (!CertificateChecker::validate(cert, a.side(), b.side(), &why)) {
    r.verdict = PairVerdict::kUnknown;
    r.reason = "certificate rejected by checker: " + why;
    return r;
  }
  r.verdict = PairVerdict::kDisjoint;
  r.certificate = std::move(cert);
  r.reason = std::move(reason);
  return r;
}

std::string domain_fingerprint(const Domain& d) {
  // Dense bounds are a full-fidelity description; a sparse domain's
  // to_string() elides the point list, so serialize every point.
  if (d.dense()) return "R" + d.bounds().to_string();
  std::string s = "S";
  d.for_each([&](const Point& p) { s += p.to_string(); });
  return s;
}

}  // namespace

const char* pair_verdict_name(PairVerdict v) {
  switch (v) {
    case PairVerdict::kUnknown: return "unknown";
    case PairVerdict::kDisjoint: return "disjoint";
    case PairVerdict::kInterferes: return "interferes";
  }
  return "?";
}

CertSide LaunchArgSummary::side() const {
  CertSide s;
  s.functor = &functor;
  s.domain_bounds = domain.bounds();
  s.field_mask = field_mask;
  s.collection_uid = collection_uid;
  s.partition_uid = partition_uid;
  s.partition_disjoint = partition_disjoint;
  s.priv = priv;
  s.redop = redop;
  return s;
}

std::optional<std::string> LaunchArgSummary::fingerprint() const {
  if (!functor.is_symbolic()) return std::nullopt;
  // Built on the issue path (amortized, but still hot for novel shapes):
  // append in place instead of chaining operator+ temporaries.
  std::string k;
  k.reserve(192);
  k += "f=";
  for (const auto& e : functor.exprs()) {
    k += e->to_string();
    k += ';';
  }
  k += " d=";
  k += domain_fingerprint(domain);
  k += " cs=";
  k += color_space.to_string();
  k += " pd=";
  k += partition_disjoint ? '1' : '0';
  k += " pu=";
  k += std::to_string(partition_uid);
  k += " cu=";
  k += std::to_string(collection_uid);
  k += " fm=";
  k += std::to_string(field_mask);
  k += " pr=";
  k += std::to_string(static_cast<int>(priv));
  k += " ro=";
  k += std::to_string(static_cast<int>(redop));
  return k;
}

InterferenceResult analyze_interference(const LaunchArgSummary& a,
                                        const LaunchArgSummary& b) {
  InterferenceResult result;

  // Rule 1: disjoint field sets never interfere, whatever the functors do.
  if ((a.field_mask & b.field_mask) == 0) {
    Certificate cert;
    cert.kind = CertKind::kFieldsDisjoint;
    return certified(std::move(cert), a, b, "disjoint field masks");
  }
  // Rule 2: partitions of different collections name different data.
  if (a.collection_uid != b.collection_uid) {
    Certificate cert;
    cert.kind = CertKind::kDistinctCollections;
    return certified(std::move(cert), a, b, "distinct collections");
  }
  // Rule 3: two readers never race (reductions count as writes).
  if (!a.writes() && !b.writes()) {
    Certificate cert;
    cert.kind = CertKind::kReadOnly;
    return certified(std::move(cert), a, b, "both sides read-only");
  }

  // Rule 4: cross-functor image separation. Both arguments must route
  // through the *same disjoint* partition (distinct colors then name
  // disjoint data); a single output component with provably separated
  // images — an interval gap or incompatible residue classes — proves the
  // color sets disjoint.
  const bool same_disjoint_partition = a.partition_uid == b.partition_uid &&
                                       a.partition_disjoint &&
                                       b.partition_disjoint;
  if (same_disjoint_partition && a.functor.is_symbolic() &&
      b.functor.is_symbolic() && !a.domain.empty() && !b.domain.empty() &&
      a.functor.output_dim() == b.functor.output_dim()) {
    for (std::size_t c = 0; c < a.functor.exprs().size(); ++c) {
      Certificate cert;
      cert.kind = CertKind::kImageSeparation;
      cert.component = static_cast<uint32_t>(c);
      const auto va = record_eval(*a.functor.exprs()[c], a.domain.bounds(), cert.lhs);
      if (!va) continue;
      const auto vb = record_eval(*b.functor.exprs()[c], b.domain.bounds(), cert.rhs);
      if (!vb) continue;
      if (!abs_disjoint(*va, *vb)) continue;
      InterferenceResult r = certified(
          std::move(cert), a, b,
          "images separated on component " + std::to_string(c) + ": " +
              va->to_string() + " vs " + vb->to_string());
      if (r.verdict == PairVerdict::kDisjoint) return r;
      result.reason = r.reason;  // checker refused our own proof — surface it
    }
  }

  // Rule 5: bounded brute-force probe for a *refutation*. Only colors of
  // one shared partition are comparable, and the probe must stay cheap.
  if (a.partition_uid == b.partition_uid &&
      a.functor.output_dim() == b.functor.output_dim() && !a.domain.empty() &&
      !b.domain.empty() && a.domain.volume() <= kMaxProbePoints &&
      b.domain.volume() <= kMaxProbePoints &&
      a.domain.volume() * b.domain.volume() <= kMaxProbePoints) {
    std::optional<RaceWitness> found;
    a.domain.for_each([&](const Point& pa) {
      if (found) return;
      const Point ca = a.functor(pa);
      if (!a.color_space.contains(ca)) return;
      b.domain.for_each([&](const Point& pb) {
        if (found) return;
        const Point cb = b.functor(pb);
        if (ca == cb) {
          RaceWitness w;
          w.arg_i = 0;
          w.arg_j = 1;
          w.p1 = pa;
          w.p2 = pb;
          w.color = ca;
          found = w;
        }
      });
    });
    if (found && pair_witness_valid(a.functor, a.domain, b.functor, b.domain,
                                    *found)) {
      result.verdict = PairVerdict::kInterferes;
      result.witness = found;
      result.reason = "collision probe found " + found->to_string();
      return result;
    }
    if (!found && a.partition_disjoint && b.partition_disjoint) {
      // Exhaustive probe with no collision on a disjoint partition is a
      // *dynamic* disjointness proof; it carries no static certificate, so
      // it stays kUnknown — the runtime only skips on certified verdicts.
      if (result.reason.empty())
        result.reason = "probe found no collision (no certificate)";
    }
  }

  if (result.reason.empty())
    result.reason = "not decidable by the static pair analysis";
  return result;
}

std::optional<std::string> interference_key(const LaunchArgSummary& a,
                                            const LaunchArgSummary& b) {
  const auto ka = a.fingerprint();
  const auto kb = b.fingerprint();
  if (!ka || !kb) return std::nullopt;
  return make_interference_key(*ka, *kb);
}

std::string make_interference_key(const std::string& fp_a, const std::string& fp_b) {
  // Order-canonical so (a, b) and (b, a) share one entry.
  const std::string& lo = fp_a <= fp_b ? fp_a : fp_b;
  const std::string& hi = fp_a <= fp_b ? fp_b : fp_a;
  std::string k;
  k.reserve(4 + lo.size() + hi.size());
  k += "P|";
  k += lo;
  k += "||";
  k += hi;
  return k;
}

namespace {

constexpr uint32_t kBundleMagic = 0x42584449;  // "IDXB"
constexpr uint32_t kBundleVersion = 1;

void bundle_put_u32(std::vector<std::byte>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
}

bool bundle_get_u32(const std::byte* data, std::size_t size, std::size_t& pos,
                    uint32_t& v) {
  if (size - pos < 4) return false;
  v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<uint32_t>(std::to_integer<uint8_t>(data[pos + i])) << (8 * i);
  pos += 4;
  return true;
}

}  // namespace

std::vector<std::byte> encode_interference_bundle(
    std::vector<std::pair<std::string, std::vector<std::byte>>> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::byte> out;
  bundle_put_u32(out, kBundleMagic);
  bundle_put_u32(out, kBundleVersion);
  bundle_put_u32(out, static_cast<uint32_t>(entries.size()));
  for (const auto& [key, cert] : entries) {
    bundle_put_u32(out, static_cast<uint32_t>(key.size()));
    for (char c : key) out.push_back(static_cast<std::byte>(c));
    bundle_put_u32(out, static_cast<uint32_t>(cert.size()));
    out.insert(out.end(), cert.begin(), cert.end());
  }
  return out;
}

std::optional<std::vector<std::pair<std::string, std::vector<std::byte>>>>
decode_interference_bundle(const std::byte* data, std::size_t size) {
  std::size_t pos = 0;
  uint32_t magic = 0, version = 0, count = 0;
  if (!bundle_get_u32(data, size, pos, magic) || magic != kBundleMagic)
    return std::nullopt;
  if (!bundle_get_u32(data, size, pos, version) || version != kBundleVersion)
    return std::nullopt;
  if (!bundle_get_u32(data, size, pos, count)) return std::nullopt;
  std::vector<std::pair<std::string, std::vector<std::byte>>> entries;
  entries.reserve(std::min<uint32_t>(count, 4096));
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t key_len = 0, cert_len = 0;
    if (!bundle_get_u32(data, size, pos, key_len) || size - pos < key_len)
      return std::nullopt;
    std::string key(reinterpret_cast<const char*>(data + pos), key_len);
    pos += key_len;
    if (!bundle_get_u32(data, size, pos, cert_len) || size - pos < cert_len)
      return std::nullopt;
    std::vector<std::byte> cert(data + pos, data + pos + cert_len);
    pos += cert_len;
    entries.emplace_back(std::move(key), std::move(cert));
  }
  if (pos != size) return std::nullopt;  // trailing bytes: refuse
  return entries;
}

std::optional<PairVerdict> InterferenceCache::lookup(const std::string& k,
                                                     const LaunchArgSummary& a,
                                                     const LaunchArgSummary& b) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(k);
  if (it == map_.end()) {
    ++counters_.misses;
    return std::nullopt;
  }
  Entry& e = it->second;
  if (e.verdict == PairVerdict::kDisjoint && !e.checked) {
    // Imported entry: the certificate must validate against the *live*
    // launch descriptors before it may authorize anything.
    const auto cert = decode_certificate(e.cert.data(), e.cert.size());
    const bool ok =
        cert && (CertificateChecker::validate(*cert, a.side(), b.side()) ||
                 CertificateChecker::validate(*cert, b.side(), a.side()));
    if (!ok) {
      ++counters_.rejected;
      ++counters_.misses;
      map_.erase(it);
      return std::nullopt;
    }
    ++counters_.validated;
    e.checked = true;
  }
  ++counters_.hits;
  return e.verdict;
}

void InterferenceCache::insert(const std::string& k, const InterferenceResult& r) {
  // A kDisjoint result without its certificate must never enter the cache.
  if (r.verdict == PairVerdict::kDisjoint && !r.certificate.has_value()) return;
  std::lock_guard<std::mutex> lock(mu_);
  Entry e;
  e.verdict = r.verdict;
  if (r.certificate) e.cert = encode_certificate(*r.certificate);
  e.checked = true;
  map_.insert_or_assign(k, std::move(e));
}

void InterferenceCache::insert_unchecked(const std::string& k,
                                         std::vector<std::byte> cert) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry e;
  e.verdict = PairVerdict::kDisjoint;
  e.cert = std::move(cert);
  e.checked = false;
  ++counters_.imported;
  map_.insert_or_assign(k, std::move(e));
}

std::vector<std::pair<std::string, std::vector<std::byte>>>
InterferenceCache::exportable() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::vector<std::byte>>> out;
  for (const auto& [k, e] : map_)
    if (e.verdict == PairVerdict::kDisjoint && e.checked && !e.cert.empty())
      out.emplace_back(k, e.cert);
  return out;
}

void InterferenceCache::note_uncacheable() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.uncacheable;
}

void InterferenceCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
}

std::size_t InterferenceCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

InterferenceCache::Counters InterferenceCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void InterferenceHistory::settle(Tree& th) {
  if (th.pending.empty()) return;
  for (Rec& r : th.pending) {
    if (!r.fp_built) {
      r.fp = r.summary.fingerprint();
      r.fp_built = true;
    }
    if (r.fp.has_value() && !th.seen.insert(*r.fp).second)
      continue;  // already recorded
    th.args.push_back(std::move(r));
    ++th.epoch;
  }
  th.pending.clear();
}

bool InterferenceHistory::certified_disjoint(uint32_t tree,
                                             const LaunchArgSummary& s,
                                             LazyFingerprint& fp,
                                             InterferenceCache& cache,
                                             bool analyze, uint64_t* pair_tests) {
  // No recorded launches on this tree: the walk would traverse empty lists,
  // which costs nothing — don't claim a certificate-backed skip.
  const auto it = trees_.find(tree);
  if (it == trees_.end()) return false;
  Tree& th = it->second;
  settle(th);
  if (th.args.empty()) return false;
  const std::optional<std::string>& sfp = fp.get(s);
  if (sfp.has_value()) {
    const auto m = th.memo.find(*sfp);
    if (m != th.memo.end() && m->second == th.epoch) return true;
  }
  for (const Rec& h : th.args) {
    std::optional<PairVerdict> v;
    std::optional<std::string> key;
    if (h.fp.has_value() && sfp.has_value()) {
      key = make_interference_key(*h.fp, *sfp);
      v = cache.lookup(*key, h.summary, s);
    } else {
      cache.note_uncacheable();
    }
    if (!v.has_value()) {
      // Import-only ranks never analyze: an unresolved pair fails closed.
      if (!analyze) return false;
      if (pair_tests != nullptr) ++*pair_tests;
      const InterferenceResult r = analyze_interference(h.summary, s);
      if (key.has_value()) cache.insert(*key, r);
      v = r.verdict;
    }
    if (*v != PairVerdict::kDisjoint) return false;
  }
  if (sfp.has_value()) th.memo[*sfp] = th.epoch;
  return true;
}

void InterferenceHistory::record(uint32_t tree, LaunchArgSummary s,
                                 LazyFingerprint fp) {
  trees_[tree].pending.push_back(
      Rec{std::move(s), std::move(fp.value), fp.built});
}

}  // namespace idxl
