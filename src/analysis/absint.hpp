#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "functor/projection.hpp"
#include "region/domain.hpp"

namespace idxl {

/// Overflow-checked int64 arithmetic. The analyzer must never itself commit
/// the UB it is trying to rule out: every transfer function routes through
/// these and degrades to "unanalyzable" (nullopt) instead of wrapping.
std::optional<int64_t> checked_add(int64_t a, int64_t b);
std::optional<int64_t> checked_sub(int64_t a, int64_t b);
std::optional<int64_t> checked_mul(int64_t a, int64_t b);
std::optional<int64_t> checked_neg(int64_t a);
std::optional<int64_t> checked_div(int64_t a, int64_t b);  // trunc; b != 0

/// Abstract value of the interval × congruence product domain: the set of
/// integers x with lo <= x <= hi and x ≡ rem (mod mod).
///
///  * mod == 0 encodes the singleton {rem} (an exact constant);
///  * mod == 1 encodes "no congruence information" (rem is then 0);
///  * mod >= 2 encodes the residue class rem + mod·Z with rem in [0, mod).
///
/// Both components always over-approximate the concrete value set, so any
/// separation proven abstractly (disjoint intervals, incompatible residue
/// classes) is a proof about the concrete images. This is the classic pair
/// of domains that decides the paper's modular/strided functor families
/// (cf. array-dependence analysis: intervals catch extent, congruences
/// catch stride/residue).
struct AbsVal {
  int64_t lo = 0, hi = 0;
  int64_t mod = 1, rem = 0;

  bool is_constant() const { return mod == 0; }
  bool contains(int64_t v) const;
  std::string to_string() const;
};

/// Leaf constructors.
AbsVal abs_const(int64_t c);
std::optional<AbsVal> abs_range(int64_t lo, int64_t hi);

/// Transfer functions. nullopt means the abstraction failed (overflow, or a
/// shape the domain cannot track, e.g. division by a non-constant) and the
/// caller must fall back to Tri::kUnknown.
std::optional<AbsVal> abs_add(const AbsVal& a, const AbsVal& b);
std::optional<AbsVal> abs_sub(const AbsVal& a, const AbsVal& b);
std::optional<AbsVal> abs_neg(const AbsVal& a);
std::optional<AbsVal> abs_mul(const AbsVal& a, const AbsVal& b);
std::optional<AbsVal> abs_div(const AbsVal& a, const AbsVal& b);
std::optional<AbsVal> abs_mod(const AbsVal& a, const AbsVal& b);

/// True when the two abstract sets provably share no integer: disjoint
/// intervals, or residue classes that are incompatible modulo
/// gcd(a.mod, b.mod).
bool abs_disjoint(const AbsVal& a, const AbsVal& b);

/// Bottom-up abstract evaluation of a functor-component expression with the
/// launch coordinates ranging over `bounds`. nullopt if the expression
/// references a coordinate beyond bounds.dim(), divides/mods by a
/// non-constant, or any step overflows.
std::optional<AbsVal> abs_eval(const Expr& e, const Rect& bounds);

/// Per-output-component abstract image of a symbolic functor over the
/// bounding box of `domain` (an over-approximation for sparse domains,
/// which is the sound direction for disjointness proofs).
std::optional<std::vector<AbsVal>> abs_image(const ProjectionFunctor& f,
                                             const Domain& domain);

/// Bitmask of launch coordinates referenced by `e` (bit i = coordinate i).
uint32_t collect_axes(const Expr& e);

/// Constant-fold an expression that references no coordinates; nullopt on
/// coordinate references, overflow, or division/modulo by zero.
std::optional<int64_t> const_fold(const Expr& e);

/// The separations d > 0 at which a 1-D functor component *could* map two
/// dense-domain points i and i+d to the same value: d must be a multiple of
/// `stride` and at most `max_delta`. This is a sound over-approximation per
/// component; intersecting the sets of all components on an axis and
/// finding them empty proves the component tuple injective along that axis
/// (residue-class separation). stride == 0 encodes the empty set (the
/// component alone is injective).
struct DeltaSet {
  int64_t stride = 1;
  int64_t max_delta = INT64_MAX;

  static DeltaSet none() { return {0, 0}; }
  static DeltaSet all() { return {1, INT64_MAX}; }
  bool empty_within(int64_t extent) const {
    if (stride == 0) return true;
    const int64_t limit = std::min(max_delta, extent - 1);
    return limit < stride;
  }
};

DeltaSet delta_intersect(const DeltaSet& a, const DeltaSet& b);

/// Collision-delta analysis of one component expression over the dense
/// interval [lo, hi] of coordinate `axis` (the expression must reference no
/// other coordinate). Strips injectivity-preserving outer affine layers,
/// then dispatches on the core shape: coordinates and strictly monotone
/// quadratics collide never; (a·i+b) mod n collides only at multiples of
/// n/gcd(|a|,n); (a·i+b) div c collides only within a quotient window.
DeltaSet collision_deltas(const Expr& e, int axis, int64_t lo, int64_t hi);

/// Linear match a·i_axis + b with overflow-checked coefficient folding.
struct Linear1D {
  int64_t a = 0, b = 0;
};
std::optional<Linear1D> match_linear_1d(const Expr& e, int axis);

/// Quadratic match q·i² + a·i + b over coordinate `axis` (checked).
struct Quad1D {
  int64_t q = 0, a = 0, b = 0;
};
std::optional<Quad1D> match_quad_1d(const Expr& e, int axis);

}  // namespace idxl
