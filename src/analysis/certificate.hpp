#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "functor/projection.hpp"
#include "region/accessor.hpp"
#include "region/domain.hpp"

namespace idxl {

/// Proof certificates for inter-launch disjointness (the "verified" half of
/// a verified/unverified speculation gate): every kDisjoint verdict the
/// interference analyzer emits is backed by a small serializable term that a
/// *separate, arithmetic-only* checker re-validates before the runtime is
/// allowed to skip a dynamic pair test. The checker deliberately shares no
/// code with the abstract interpreter (analysis/absint.*) — it re-derives
/// every claimed interval × residue-class fact from the launch descriptors
/// themselves — so a bug in the analyzer cannot both produce a wrong verdict
/// and approve it.
///
/// Certificate grammar (see docs/ANALYSIS.md):
///
///   cert      ::= fields-disjoint | distinct-collections
///               | read-only | image-separation(component, deriv, deriv)
///   deriv     ::= step*                 (postfix program, one per functor
///                                        component expression)
///   step      ::= op value claim
///   claim     ::= (lo, hi, mod, rem)    (interval × congruence abstract
///                                        value, absint encoding)
enum class CertKind : uint8_t {
  kFieldsDisjoint = 0,      ///< the two args touch disjoint field sets
  kDistinctCollections = 1, ///< args name partitions of different trees
  kReadOnly = 2,            ///< neither side writes (or reduces)
  kImageSeparation = 3,     ///< functor images provably disjoint on a component
};

/// Interval × congruence claim attached to one derivation step. Encoding
/// matches AbsVal: mod == 0 is the singleton {rem}; mod == 1 carries no
/// congruence (rem must be 0); mod >= 2 is the residue class rem + mod·Z
/// with rem in [0, mod) and both interval endpoints on the class.
struct CertVal {
  int64_t lo = 0, hi = 0;
  int64_t mod = 1, rem = 0;

  std::string to_string() const;
};

/// Operation of one derivation step; values mirror ExprKind so a derivation
/// can be structurally matched against the actual functor expression.
enum class CertOp : uint8_t {
  kConst = 0,
  kCoord = 1,
  kAdd = 2,
  kSub = 3,
  kMul = 4,
  kDiv = 5,
  kMod = 6,
  kNeg = 7,
};

struct CertStep {
  CertOp op = CertOp::kConst;
  int64_t value = 0;  ///< kConst: literal; kCoord: axis; 0 otherwise
  CertVal val;        ///< claimed abstract value of this subexpression
};

struct Certificate {
  CertKind kind = CertKind::kFieldsDisjoint;
  uint32_t component = 0;      ///< functor output component (kImageSeparation)
  std::vector<CertStep> lhs;   ///< derivation for the first launch argument
  std::vector<CertStep> rhs;   ///< derivation for the second launch argument

  std::string to_string() const;
};

/// Everything the checker is allowed to trust about one side of a launch
/// pair: the *actual* functor expression and launch-domain bounds (the facts
/// the certificate's claims are checked against) plus the descriptor fields
/// the non-image certificate kinds assert about.
struct CertSide {
  const ProjectionFunctor* functor = nullptr;
  Rect domain_bounds;
  uint64_t field_mask = ~uint64_t{0};
  uint32_t collection_uid = 0;
  uint32_t partition_uid = 0;
  bool partition_disjoint = false;
  Privilege priv = Privilege::kRead;
  ReductionOp redop = ReductionOp::kNone;
};

/// Independent re-validation of a certificate against two launch sides.
/// For kImageSeparation it (1) structurally matches each derivation against
/// the side's actual component expression, (2) re-derives every step's
/// interval and residue class from the claimed child values with exact
/// 128-bit arithmetic and rejects any claim that is not a sound
/// over-approximation, and (3) confirms the two root claims are disjoint
/// (separated intervals or incompatible residue classes). `why`, when
/// non-null, receives the reason for a rejection.
class CertificateChecker {
 public:
  static bool validate(const Certificate& cert, const CertSide& a,
                       const CertSide& b, std::string* why = nullptr);
};

/// Wire form: fixed-width little-endian fields followed by an FNV-1a-64
/// checksum, so any bit flip in transit fails decode deterministically (the
/// checker — not the checksum — remains the soundness authority; the
/// checksum only turns corruption into a clean reject).
std::vector<std::byte> encode_certificate(const Certificate& cert);
std::optional<Certificate> decode_certificate(const std::byte* data,
                                              std::size_t size);

}  // namespace idxl
