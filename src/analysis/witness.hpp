#pragma once

#include <cstdint>
#include <string>

#include "functor/projection.hpp"
#include "region/domain.hpp"

namespace idxl {

/// A concrete counterexample backing a kNo / unsafe verdict: two launch
/// points whose projection functors select the same color of the same
/// partition, i.e. two tasks of the index launch that would touch the same
/// data with interfering privileges. arg_i / arg_j index the launch's
/// region requirements (equal for self-interference of a single argument,
/// in which case p1 != p2).
struct RaceWitness {
  uint32_t arg_i = 0;
  uint32_t arg_j = 0;
  Point p1;     ///< launch point routed through argument arg_i
  Point p2;     ///< launch point routed through argument arg_j
  Point color;  ///< the shared color both points project to

  std::string to_string() const;
};

/// Re-evaluate the functors at the witness points and confirm the collision
/// is real: both points lie in the launch domain, both project to
/// `w.color`, and for a self-collision (fi == fj semantically) the points
/// differ. Every kNo verdict the analyzer emits must pass this — tests and
/// the fuzz oracle call it directly.
bool witness_valid(const ProjectionFunctor& fi, const ProjectionFunctor& fj,
                   const Domain& domain, const RaceWitness& w);

/// Single-argument (self-check) form: the two points must be distinct.
bool witness_valid(const ProjectionFunctor& f, const Domain& domain,
                   const RaceWitness& w);

/// Cross-launch form: the two points come from *different* launches with
/// their own domains (p1 from da routed through fa, p2 from db through fb),
/// so equal points are a real collision, not a degenerate self-pair. Every
/// kInterferes verdict of the inter-launch analyzer must pass this.
bool pair_witness_valid(const ProjectionFunctor& fa, const Domain& da,
                        const ProjectionFunctor& fb, const Domain& db,
                        const RaceWitness& w);

}  // namespace idxl
