#include "analysis/hybrid.hpp"

#include "obs/profiler.hpp"

namespace idxl {

namespace {

std::string arg_desc(std::size_t i, const CheckArg& a) {
  return "arg " + std::to_string(i) + " (" + privilege_name(a.priv) + ", functor " +
         (a.functor ? a.functor->to_string() : "<none>") + ")";
}

std::string domain_key(const Domain& d) {
  // Dense bounds are a full-fidelity description; a sparse domain's
  // to_string() is not (it elides the point list), so serialize every point.
  if (d.dense()) return "R" + d.bounds().to_string();
  std::string s = "S";
  d.for_each([&](const Point& p) { s += p.to_string(); });
  return s;
}

SafetyReport analyze_uncached(
    std::span<const CheckArg> args, const Domain& domain,
    const AnalysisOptions& options,
    const std::function<bool(std::size_t, std::size_t)>& pair_independent) {
  SafetyReport report;
  std::vector<bool> flagged(args.size(), false);
  ProfileScope static_scope(options.profiler, ProfCategory::kSafety,
                            Profiler::kNameSafetyStatic);

  // --- Self-checks (§3): each write/read-write argument needs a disjoint
  // partition and an injective functor. Reads and reductions are exempt.
  for (std::size_t i = 0; i < args.size(); ++i) {
    const CheckArg& a = args[i];
    IDXL_ASSERT(a.functor != nullptr);
    if (a.priv == Privilege::kRead || a.priv == Privilege::kReduce) continue;
    if (!a.partition_disjoint) {
      report.outcome = SafetyOutcome::kUnsafe;
      report.reason = arg_desc(i, a) + ": write privilege on an aliased partition";
      return report;
    }
    RaceWitness w;
    switch (static_injectivity(*a.functor, domain, options.extended_static, &w)) {
      case Tri::kYes:
        break;
      case Tri::kNo:
        report.outcome = SafetyOutcome::kUnsafe;
        w.arg_i = w.arg_j = static_cast<uint32_t>(i);
        report.witness = w;
        report.reason = arg_desc(i, a) +
                        ": projection functor is not injective over the launch domain"
                        "; witness: " + w.to_string();
        return report;
      case Tri::kUnknown:
        flagged[i] = true;
        break;
    }
  }

  // --- Cross-checks (§3): for each pair, one of the three escape hatches
  // must apply; the image-disjointness hatch may defer to the dynamic check.
  for (std::size_t i = 0; i < args.size(); ++i) {
    for (std::size_t j = i + 1; j < args.size(); ++j) {
      const CheckArg& a = args[i];
      const CheckArg& b = args[j];
      // Rule 0 (Legion's per-field privileges, which the paper's model
      // abstracts away): arguments naming disjoint field sets never touch
      // common data, whatever their privileges. This is what makes the
      // standard double-buffered stencil (read halo of field A, write
      // blocks of field B) statically safe.
      if ((a.field_mask & b.field_mask) == 0) continue;
      // Rule 1: both read, or both reductions with the same operator.
      if (a.priv == Privilege::kRead && b.priv == Privilege::kRead) continue;
      if (a.priv == Privilege::kReduce && b.priv == Privilege::kReduce &&
          a.redop == b.redop)
        continue;
      // Rule 2: partitions of collections that are themselves disjoint.
      const bool independent = pair_independent
                                   ? pair_independent(i, j)
                                   : a.collection_uid != b.collection_uid;
      if (independent) continue;
      // Rule 3: the same disjoint partition with disjoint functor images.
      if (a.partition_uid == b.partition_uid && a.partition_disjoint) {
        RaceWitness w;
        switch (static_images_disjoint(*a.functor, *b.functor, domain,
                                       options.extended_static, &w)) {
          case Tri::kYes:
            continue;
          case Tri::kNo:
            report.outcome = SafetyOutcome::kUnsafe;
            w.arg_i = static_cast<uint32_t>(i);
            w.arg_j = static_cast<uint32_t>(j);
            report.witness = w;
            report.reason = arg_desc(i, a) + " and " + arg_desc(j, b) +
                            ": functors select a common sub-collection with a writer"
                            "; witness: " + w.to_string();
            return report;
          case Tri::kUnknown:
            flagged[i] = flagged[j] = true;
            continue;
        }
      }
      report.outcome = SafetyOutcome::kUnsafe;
      report.reason = arg_desc(i, a) + " and " + arg_desc(j, b) +
                      ": interfering partitions of the same collection";
      return report;
    }
  }

  // --- Residual arguments go to the dynamic check.
  std::vector<CheckArg> dynamic_args;
  for (std::size_t i = 0; i < args.size(); ++i)
    if (flagged[i]) {
      dynamic_args.push_back(args[i]);
      report.residual_args.push_back(static_cast<uint32_t>(i));
    }

  static_scope.close();

  if (dynamic_args.empty()) {
    report.outcome = SafetyOutcome::kSafeStatic;
    return report;
  }
  if (!options.enable_dynamic_checks) {
    report.outcome = SafetyOutcome::kSafeUnchecked;
    return report;
  }

  ProfileScope dynamic_scope(options.profiler, ProfCategory::kSafety,
                             Profiler::kNameSafetyDynamic);
  const DynamicCheckResult dyn = dynamic_cross_check(dynamic_args, domain);
  report.dynamic_points = dyn.points_evaluated;
  report.dynamic_bits = dyn.bitmask_bits;
  if (dyn.safe) {
    report.outcome = SafetyOutcome::kSafeDynamic;
  } else {
    report.outcome = SafetyOutcome::kUnsafe;
    report.reason = "dynamic check found a projection functor image conflict";
    if (dyn.witness) {
      // The dynamic check saw only the residual args; map its indices back
      // onto the caller's argument numbering.
      RaceWitness w = *dyn.witness;
      w.arg_i = report.residual_args[w.arg_i];
      w.arg_j = report.residual_args[w.arg_j];
      report.witness = w;
      report.reason += "; witness: " + w.to_string();
    }
  }
  return report;
}

}  // namespace

std::optional<std::string> VerdictCache::key(std::span<const CheckArg> args,
                                             const Domain& domain,
                                             const AnalysisOptions& options) {
  std::string k;
  k.reserve(64 + 96 * args.size());
  k += options.extended_static ? "E1" : "E0";
  k += options.enable_dynamic_checks ? "D1" : "D0";
  k += "|";
  k += domain_key(domain);
  for (const CheckArg& a : args) {
    // Opaque functors have no finite fingerprint; Expr::to_string() is
    // fully parenthesized, so symbolic ones serialize unambiguously.
    if (a.functor == nullptr || !a.functor->is_symbolic()) return std::nullopt;
    k += "|f=";
    for (const auto& e : a.functor->exprs()) {
      k += e->to_string();
      k += ";";
    }
    k += " cs=" + a.color_space.to_string();
    k += " pd=" + std::to_string(a.partition_disjoint ? 1 : 0);
    k += " pu=" + std::to_string(a.partition_uid);
    k += " cu=" + std::to_string(a.collection_uid);
    k += " fm=" + std::to_string(a.field_mask);
    k += " pr=" + std::to_string(static_cast<int>(a.priv));
    k += " ro=" + std::to_string(static_cast<int>(a.redop));
  }
  return k;
}

std::optional<SafetyReport> VerdictCache::lookup(const std::string& k) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(k);
  if (it == map_.end()) {
    ++counters_.misses;
    return std::nullopt;
  }
  ++counters_.hits;
  return it->second;
}

void VerdictCache::insert(const std::string& k, const SafetyReport& report) {
  std::lock_guard<std::mutex> lock(mu_);
  SafetyReport stored = report;
  stored.cache_hit = false;
  stored.cache_hits = stored.cache_misses = 0;
  map_.insert_or_assign(k, std::move(stored));
}

void VerdictCache::note_uncacheable() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.uncacheable;
}

void VerdictCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
}

std::size_t VerdictCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

VerdictCache::Counters VerdictCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

SafetyReport analyze_launch_safety(
    std::span<const CheckArg> args, const Domain& domain,
    const AnalysisOptions& options,
    const std::function<bool(std::size_t, std::size_t)>& pair_independent) {
  if (!options.verdict_cache) {
    return analyze_uncached(args, domain, options, pair_independent);
  }

  std::optional<std::string> cache_key;
  {
    ProfileScope cache_scope(options.profiler, ProfCategory::kSafety,
                             Profiler::kNameSafetyCache);
    cache_key = VerdictCache::key(args, domain, options);
    if (cache_key) {
      if (auto hit = options.verdict_cache->lookup(*cache_key)) {
        SafetyReport report = std::move(*hit);
        report.cache_hit = true;
        report.dynamic_points = 0;  // no work was redone
        report.dynamic_bits = 0;
        const VerdictCache::Counters c = options.verdict_cache->counters();
        report.cache_hits = c.hits;
        report.cache_misses = c.misses;
        return report;
      }
    } else {
      options.verdict_cache->note_uncacheable();
    }
  }

  SafetyReport report = analyze_uncached(args, domain, options, pair_independent);
  if (cache_key) options.verdict_cache->insert(*cache_key, report);
  const VerdictCache::Counters c = options.verdict_cache->counters();
  report.cache_hits = c.hits;
  report.cache_misses = c.misses;
  return report;
}

}  // namespace idxl
