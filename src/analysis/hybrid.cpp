#include "analysis/hybrid.hpp"

#include "obs/profiler.hpp"

namespace idxl {

namespace {

std::string arg_desc(std::size_t i, const CheckArg& a) {
  return "arg " + std::to_string(i) + " (" + privilege_name(a.priv) + ", functor " +
         (a.functor ? a.functor->to_string() : "<none>") + ")";
}

}  // namespace

SafetyReport analyze_launch_safety(
    std::span<const CheckArg> args, const Domain& domain,
    const AnalysisOptions& options,
    const std::function<bool(std::size_t, std::size_t)>& pair_independent) {
  SafetyReport report;
  std::vector<bool> flagged(args.size(), false);
  ProfileScope static_scope(options.profiler, ProfCategory::kSafety,
                            Profiler::kNameSafetyStatic);

  // --- Self-checks (§3): each write/read-write argument needs a disjoint
  // partition and an injective functor. Reads and reductions are exempt.
  for (std::size_t i = 0; i < args.size(); ++i) {
    const CheckArg& a = args[i];
    IDXL_ASSERT(a.functor != nullptr);
    if (a.priv == Privilege::kRead || a.priv == Privilege::kReduce) continue;
    if (!a.partition_disjoint) {
      report.outcome = SafetyOutcome::kUnsafe;
      report.reason = arg_desc(i, a) + ": write privilege on an aliased partition";
      return report;
    }
    switch (static_injectivity(*a.functor, domain, options.extended_static)) {
      case Tri::kYes:
        break;
      case Tri::kNo:
        report.outcome = SafetyOutcome::kUnsafe;
        report.reason = arg_desc(i, a) +
                        ": projection functor is not injective over the launch domain";
        return report;
      case Tri::kUnknown:
        flagged[i] = true;
        break;
    }
  }

  // --- Cross-checks (§3): for each pair, one of the three escape hatches
  // must apply; the image-disjointness hatch may defer to the dynamic check.
  for (std::size_t i = 0; i < args.size(); ++i) {
    for (std::size_t j = i + 1; j < args.size(); ++j) {
      const CheckArg& a = args[i];
      const CheckArg& b = args[j];
      // Rule 0 (Legion's per-field privileges, which the paper's model
      // abstracts away): arguments naming disjoint field sets never touch
      // common data, whatever their privileges. This is what makes the
      // standard double-buffered stencil (read halo of field A, write
      // blocks of field B) statically safe.
      if ((a.field_mask & b.field_mask) == 0) continue;
      // Rule 1: both read, or both reductions with the same operator.
      if (a.priv == Privilege::kRead && b.priv == Privilege::kRead) continue;
      if (a.priv == Privilege::kReduce && b.priv == Privilege::kReduce &&
          a.redop == b.redop)
        continue;
      // Rule 2: partitions of collections that are themselves disjoint.
      const bool independent = pair_independent
                                   ? pair_independent(i, j)
                                   : a.collection_uid != b.collection_uid;
      if (independent) continue;
      // Rule 3: the same disjoint partition with disjoint functor images.
      if (a.partition_uid == b.partition_uid && a.partition_disjoint) {
        switch (static_images_disjoint(*a.functor, *b.functor, domain,
                                       options.extended_static)) {
          case Tri::kYes:
            continue;
          case Tri::kNo:
            report.outcome = SafetyOutcome::kUnsafe;
            report.reason = arg_desc(i, a) + " and " + arg_desc(j, b) +
                            ": functors select a common sub-collection with a writer";
            return report;
          case Tri::kUnknown:
            flagged[i] = flagged[j] = true;
            continue;
        }
      }
      report.outcome = SafetyOutcome::kUnsafe;
      report.reason = arg_desc(i, a) + " and " + arg_desc(j, b) +
                      ": interfering partitions of the same collection";
      return report;
    }
  }

  // --- Residual arguments go to the dynamic check.
  std::vector<CheckArg> dynamic_args;
  for (std::size_t i = 0; i < args.size(); ++i)
    if (flagged[i]) {
      dynamic_args.push_back(args[i]);
      report.residual_args.push_back(static_cast<uint32_t>(i));
    }

  static_scope.close();

  if (dynamic_args.empty()) {
    report.outcome = SafetyOutcome::kSafeStatic;
    return report;
  }
  if (!options.enable_dynamic_checks) {
    report.outcome = SafetyOutcome::kSafeUnchecked;
    return report;
  }

  ProfileScope dynamic_scope(options.profiler, ProfCategory::kSafety,
                             Profiler::kNameSafetyDynamic);
  const DynamicCheckResult dyn = dynamic_cross_check(dynamic_args, domain);
  report.dynamic_points = dyn.points_evaluated;
  report.dynamic_bits = dyn.bitmask_bits;
  if (dyn.safe) {
    report.outcome = SafetyOutcome::kSafeDynamic;
  } else {
    report.outcome = SafetyOutcome::kUnsafe;
    report.reason = "dynamic check found a projection functor image conflict";
  }
  return report;
}

}  // namespace idxl
