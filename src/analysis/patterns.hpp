#pragma once

#include <optional>

#include "functor/expr.hpp"

namespace idxl {

/// Structural patterns over 1-D projection-functor expressions, shared by
/// the dynamic checker's specialized loops and the (extended) static
/// analyzer.

/// Degree-<=2 polynomial in the single launch coordinate i0:
/// q·i² + a·i + b.
struct Poly1 {
  int64_t q = 0, a = 0, b = 0;
  int64_t eval(int64_t i) const { return (q * i + a) * i + b; }
};

/// Match an expression as a Poly1; nullopt for higher degree, other
/// coordinates, div, or mod.
std::optional<Poly1> match_poly1(const Expr& e);

/// (a·i + b) mod n with C++ remainder semantics.
struct ModLinear {
  int64_t a = 0, b = 0, n = 1;
  int64_t eval(int64_t i) const { return (a * i + b) % n; }
};

/// Match `linear mod constant` (constant nonzero).
std::optional<ModLinear> match_modlinear(const Expr& e);

}  // namespace idxl
