#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analysis/certificate.hpp"
#include "analysis/witness.hpp"
#include "functor/projection.hpp"
#include "region/accessor.hpp"
#include "region/domain.hpp"

namespace idxl {

/// Static verdict for a *pair of launches*: can any task of launch A and
/// any task of launch B touch the same data with interfering privileges?
/// Extends the paper's per-launch hybrid analysis across launch boundaries,
/// so the runtime can skip the dynamic pair test on the hot issue path.
enum class PairVerdict : uint8_t {
  kUnknown = 0,   ///< neither proven disjoint nor refuted — run the tracker
  kDisjoint = 1,  ///< provably independent; backed by a checked certificate
  kInterferes = 2 ///< a concrete racing pair exists; backed by a RaceWitness
};

const char* pair_verdict_name(PairVerdict v);

/// One region argument of a launch, summarized for cross-launch analysis
/// (the inter-launch sibling of CheckArg; owns its functor/domain copies so
/// summaries can outlive the launch that produced them).
struct LaunchArgSummary {
  ProjectionFunctor functor = ProjectionFunctor::identity(1);
  Domain domain;                  ///< launch domain the functor ranges over
  Rect color_space;               ///< partition's (dense) color space
  uint32_t partition_uid = 0;
  bool partition_disjoint = false;
  uint32_t collection_uid = 0;    ///< identity of the underlying tree
  uint64_t field_mask = ~uint64_t{0};
  Privilege priv = Privilege::kRead;
  ReductionOp redop = ReductionOp::kNone;

  bool writes() const { return privilege_writes(priv); }

  /// The checker-facing view (the functor pointer aliases this summary).
  CertSide side() const;

  /// Full-fidelity serialization, or nullopt when the functor is opaque (no
  /// finite fingerprint — such pairs are analyzed afresh, never cached).
  std::optional<std::string> fingerprint() const;
};

struct InterferenceResult {
  PairVerdict verdict = PairVerdict::kUnknown;
  /// Present and checker-validated for every kDisjoint verdict: the runtime
  /// refuses uncertified skips, so an unvalidated certificate downgrades
  /// the verdict to kUnknown before it ever reaches a caller.
  std::optional<Certificate> certificate;
  /// Present and pair_witness_valid()-validated for every kInterferes.
  std::optional<RaceWitness> witness;
  std::string reason;
};

/// Decide interference of two launch arguments. Rules, in order: disjoint
/// field masks; distinct collections; both sides read-only; cross-functor
/// image separation on some output component (same disjoint partition,
/// symbolic functors — residue-class or interval-gap proofs via the
/// interval × congruence domain, emitting a certificate the independent
/// checker validates before the verdict is returned); bounded brute-force
/// collision probe producing a validated witness. Anything else: kUnknown.
InterferenceResult analyze_interference(const LaunchArgSummary& a,
                                        const LaunchArgSummary& b);

/// Order-canonical cache key for a pair (nullopt if either side is opaque).
std::optional<std::string> interference_key(const LaunchArgSummary& a,
                                            const LaunchArgSummary& b);

/// Same key, built from two precomputed fingerprints (callers that keep
/// summaries around memoize the fingerprints instead of rebuilding them per
/// pair test).
std::string make_interference_key(const std::string& fp_a, const std::string& fp_b);

/// Deterministic wire form of (key, certificate-bytes) entries — the payload
/// a driver ships so workers validate certificates instead of re-analyzing.
/// Entries are sorted by key; each certificate blob carries its own
/// checksum, so the bundle itself is plain length-prefixed framing.
std::vector<std::byte> encode_interference_bundle(
    std::vector<std::pair<std::string, std::vector<std::byte>>> entries);

/// nullopt on any framing violation (bad magic/version, truncation, trailing
/// bytes). Certificate payloads are NOT validated here — that happens
/// against live launch descriptors at first lookup.
std::optional<std::vector<std::pair<std::string, std::vector<std::byte>>>>
decode_interference_bundle(const std::byte* data, std::size_t size);

/// Pair-verdict cache, shared across shard threads and — via the
/// export/import surface — across distributed ranks. Keys are full-fidelity
/// fingerprints (never hashes: a collision would reuse the wrong verdict,
/// which is a soundness bug). Entries imported from a remote rank carry
/// their certificate bytes but are *unchecked*: the first lookup re-decodes
/// and re-validates the certificate against the live launch descriptors and
/// either promotes the entry or rejects-and-erases it, so a poisoned
/// certificate can never authorize a skip.
class InterferenceCache {
 public:
  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t uncacheable = 0;  ///< lookups skipped (opaque functor present)
    uint64_t imported = 0;     ///< entries received from a remote rank
    uint64_t validated = 0;    ///< imported certificates that passed the checker
    uint64_t rejected = 0;     ///< imported certificates refused by the checker
  };

  /// Verdict for `k`, validating a pending imported certificate against the
  /// two live sides first. kDisjoint is only ever returned checked.
  std::optional<PairVerdict> lookup(const std::string& k,
                                    const LaunchArgSummary& a,
                                    const LaunchArgSummary& b);

  /// Record a locally analyzed result (certificates were already validated
  /// by analyze_interference).
  void insert(const std::string& k, const InterferenceResult& r);

  /// Record an imported kDisjoint entry whose certificate has NOT been
  /// validated on this rank yet.
  void insert_unchecked(const std::string& k, std::vector<std::byte> cert);

  /// All checked kDisjoint entries as (key, certificate bytes) — the
  /// payload a driver ships to worker ranks.
  std::vector<std::pair<std::string, std::vector<std::byte>>> exportable() const;

  void note_uncacheable();
  void clear();
  std::size_t size() const;
  Counters counters() const;

 private:
  struct Entry {
    PairVerdict verdict = PairVerdict::kUnknown;
    std::vector<std::byte> cert;  ///< encoded certificate (kDisjoint only)
    bool checked = false;         ///< certificate validated on this rank
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> map_;
  Counters counters_;
};

/// A summary fingerprint built at most once, on first demand. The issue
/// path threads one of these per argument through certified_disjoint() and
/// record() so the (string-heavy) serialization runs only for arguments
/// that actually face a pair test — and never twice.
struct LazyFingerprint {
  std::optional<std::string> value;
  bool built = false;

  const std::optional<std::string>& get(const LaunchArgSummary& s) {
    if (!built) {
      value = s.fingerprint();
      built = true;
    }
    return value;
  }
};

/// Per-fence record of every group-path launch argument a runtime issued on
/// each region tree — the "other side" of every pair test the group walk
/// would otherwise run dynamically. Shared by the local and sharded
/// runtimes; cleared wherever the dependence tiers reset (the recorded
/// summaries must never outlive the uses they stand for). Not internally
/// locked: owned by a single issuing thread, like the dependence trackers
/// themselves.
///
/// Bookkeeping is amortized so enabling the analysis never slows a launch
/// stream that cannot profit from it: record() is an O(1) append (no
/// fingerprint build, no dedup), settled lazily by the next pair test on
/// the tree; a per-tree memo keyed by (fingerprint, epoch) answers repeated
/// identical launches — the steady state of iterative apps — in one hash
/// lookup instead of a full walk.
class InterferenceHistory {
 public:
  /// True iff `s` is certified kDisjoint against *every* summary recorded on
  /// `tree` (empty history: false — there is nothing to skip). Verdicts come
  /// from `cache` when fingerprints allow; unresolved pairs run the analyzer
  /// only when `analyze` is set (import-only worker ranks fail closed
  /// instead), bumping *pair_tests once per fresh analysis. The memo is
  /// sound because verdicts are properties of launch shapes: a fingerprint
  /// that tested disjoint against every record stays disjoint until a new
  /// record arrives (which bumps the epoch and invalidates the hit).
  bool certified_disjoint(uint32_t tree, const LaunchArgSummary& s,
                          LazyFingerprint& fp, InterferenceCache& cache,
                          bool analyze, uint64_t* pair_tests);

  /// Record one issued argument. Cheap by design: the fingerprint build and
  /// the dedup it enables are deferred to the next certified_disjoint() on
  /// this tree. Pass the pair test's LazyFingerprint so a fingerprint built
  /// there is reused rather than rebuilt.
  void record(uint32_t tree, LaunchArgSummary s, LazyFingerprint fp = {});

  void clear() { trees_.clear(); }

 private:
  struct Rec {
    LaunchArgSummary summary;
    std::optional<std::string> fp;
    bool fp_built = false;
  };
  struct Tree {
    std::vector<Rec> args;     ///< settled, fingerprinted, deduplicated
    std::vector<Rec> pending;  ///< appended by record(), settled lazily
    std::unordered_set<std::string> seen;
    /// Bumped once per settled insert; memo hits are valid only at the
    /// epoch they were stored under.
    uint64_t epoch = 0;
    /// fingerprint -> epoch at which it was certified against all records.
    std::unordered_map<std::string, uint64_t> memo;
  };
  /// Move pending records into args: build missing fingerprints, drop
  /// duplicates, bump the epoch per fresh insert.
  void settle(Tree& th);
  std::unordered_map<uint32_t, Tree> trees_;
};

}  // namespace idxl
