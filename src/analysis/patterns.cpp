#include "analysis/patterns.hpp"

namespace idxl {

std::optional<Poly1> match_poly1(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kConst: return Poly1{0, 0, e.value};
    case ExprKind::kCoord:
      if (e.value != 0) return std::nullopt;
      return Poly1{0, 1, 0};
    case ExprKind::kNeg: {
      auto p = match_poly1(*e.lhs);
      if (!p) return std::nullopt;
      return Poly1{-p->q, -p->a, -p->b};
    }
    case ExprKind::kAdd:
    case ExprKind::kSub: {
      auto l = match_poly1(*e.lhs);
      auto r = match_poly1(*e.rhs);
      if (!l || !r) return std::nullopt;
      const int64_t s = e.kind == ExprKind::kAdd ? 1 : -1;
      return Poly1{l->q + s * r->q, l->a + s * r->a, l->b + s * r->b};
    }
    case ExprKind::kMul: {
      auto l = match_poly1(*e.lhs);
      auto r = match_poly1(*e.rhs);
      if (!l || !r) return std::nullopt;
      // Product degree must stay <= 2.
      if (l->q != 0 && (r->q != 0 || r->a != 0)) return std::nullopt;
      if (r->q != 0 && l->a != 0) return std::nullopt;
      if (l->a != 0 && r->a != 0 && (l->q != 0 || r->q != 0)) return std::nullopt;
      return Poly1{l->q * r->b + r->q * l->b + l->a * r->a,
                   l->a * r->b + r->a * l->b, l->b * r->b};
    }
    case ExprKind::kDiv:
    case ExprKind::kMod:
      return std::nullopt;
  }
  return std::nullopt;
}

std::optional<ModLinear> match_modlinear(const Expr& e) {
  if (e.kind != ExprKind::kMod) return std::nullopt;
  if (e.rhs->kind != ExprKind::kConst || e.rhs->value == 0) return std::nullopt;
  auto p = match_poly1(*e.lhs);
  if (!p || p->q != 0) return std::nullopt;
  return ModLinear{p->a, p->b, e.rhs->value};
}

}  // namespace idxl
