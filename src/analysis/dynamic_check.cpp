#include "analysis/dynamic_check.hpp"

#include <algorithm>
#include <optional>

#include "analysis/patterns.hpp"

namespace idxl {

namespace {
// The dynamic check specializes its evaluation loop for the Poly1 and
// ModLinear shapes (analysis/patterns.hpp) — the interpreter analogue of
// the inline code Regent generates — so Table 2's constant factors stay in
// the same regime as the paper's.

/// Listing 3's inner step: bounds-check the linearized color, then probe the
/// bitmask (and set it for write/reduce passes). Returns true on conflict.
inline bool probe(BitVector& bm, int64_t value, int64_t volume, bool set_bit) {
  if (value < 0 || value >= volume) return false;  // out-of-bounds color: skip
  const auto idx = static_cast<std::size_t>(value);
  if (set_bit) return bm.test_and_set(idx);
  return bm.test(idx);
}

/// Evaluate one argument's functor over the whole launch domain against a
/// shared bitmask. `set_bit` is true for write/reduce arguments. Returns
/// true as soon as a conflict is found.
bool run_arg_pass(const ProjectionFunctor& f, const Rect& color_space,
                  const Domain& domain, BitVector& bm, bool set_bit,
                  uint64_t& evals) {
  const int64_t volume = color_space.volume();

  // Fast paths: 1-D dense launch domain, 1-D symbolic functor, 1-D colors.
  if (domain.dense() && domain.dim() == 1 && color_space.dim() == 1 &&
      f.is_symbolic() && f.output_dim() == 1) {
    const int64_t lo = domain.bounds().lo[0], hi = domain.bounds().hi[0];
    const int64_t base = color_space.lo[0];
    const Expr& e = *f.exprs()[0];
    if (auto p = match_poly1(e)) {
      for (int64_t i = lo; i <= hi; ++i) {
        ++evals;
        if (probe(bm, p->eval(i) - base, volume, set_bit)) return true;
      }
      return false;
    }
    if (auto m = match_modlinear(e)) {
      for (int64_t i = lo; i <= hi; ++i) {
        ++evals;
        if (probe(bm, m->eval(i) - base, volume, set_bit)) return true;
      }
      return false;
    }
    f.ensure_compiled();
    Point pt = Point::p1(0);
    int64_t value = 0;
    for (int64_t i = lo; i <= hi; ++i) {
      pt.c[0] = i;
      f.eval_into(pt, &value);
      ++evals;
      if (probe(bm, value - base, volume, set_bit)) return true;
    }
    return false;
  }

  // General path: any dimensionality, dense or sparse domain. Linearize the
  // color tuple through the color space's bounding rect (the paper's
  // `linearize`, §4), rejecting per-axis out-of-bounds colors first.
  f.ensure_compiled();
  bool conflict = false;
  int64_t coords[kMaxDim];
  domain.for_each([&](const Point& p) {
    if (conflict) return;
    f.eval_into(p, coords);
    ++evals;
    int64_t idx = 0;
    for (int d = 0; d < color_space.dim(); ++d) {
      if (coords[d] < color_space.lo[d] || coords[d] > color_space.hi[d]) return;
      idx = idx * (color_space.hi[d] - color_space.lo[d] + 1) +
            (coords[d] - color_space.lo[d]);
    }
    if (probe(bm, idx, volume, set_bit)) conflict = true;
  });
  return conflict;
}

}  // namespace

DynamicCheckResult dynamic_self_check(const ProjectionFunctor& f,
                                      const Rect& color_space, const Domain& domain) {
  IDXL_REQUIRE(f.output_dim() == color_space.dim(),
               "functor output dimensionality must match the color space");
  DynamicCheckResult result;
  BitVector bm(static_cast<std::size_t>(color_space.volume()));
  result.bitmask_bits = static_cast<uint64_t>(color_space.volume());
  result.safe = !run_arg_pass(f, color_space, domain, bm, /*set_bit=*/true,
                              result.points_evaluated);
  return result;
}

DynamicCheckResult dynamic_cross_check(std::span<const CheckArg> args,
                                       const Domain& domain) {
  DynamicCheckResult result;

  // Group arguments by partition (§4: linear time via a shared bitmask
  // instead of quadratic pairwise checks), then split each group into
  // field-connected components: arguments whose field sets are disjoint can
  // never interfere, so they must not share a bitmask (a shared one would
  // manufacture spurious conflicts).
  std::vector<uint32_t> uids;
  for (const CheckArg& a : args) uids.push_back(a.partition_uid);
  std::sort(uids.begin(), uids.end());
  uids.erase(std::unique(uids.begin(), uids.end()), uids.end());

  for (uint32_t uid : uids) {
    std::vector<std::size_t> group;
    for (std::size_t i = 0; i < args.size(); ++i)
      if (args[i].partition_uid == uid) group.push_back(i);

    std::vector<bool> assigned(group.size(), false);
    for (std::size_t seed = 0; seed < group.size(); ++seed) {
      if (assigned[seed]) continue;
      // Grow the field-connected component containing `seed`.
      std::vector<std::size_t> comp{group[seed]};
      assigned[seed] = true;
      uint64_t comp_mask = args[group[seed]].field_mask;
      for (bool grew = true; grew;) {
        grew = false;
        for (std::size_t k = 0; k < group.size(); ++k) {
          if (assigned[k] || !(args[group[k]].field_mask & comp_mask)) continue;
          assigned[k] = true;
          comp.push_back(group[k]);
          comp_mask |= args[group[k]].field_mask;
          grew = true;
        }
      }

      // Skip components with no writer: reads never conflict with reads.
      bool any_writer = false;
      for (std::size_t idx : comp)
        if (privilege_writes(args[idx].priv)) any_writer = true;
      if (!any_writer) continue;

      const Rect& cs = args[comp.front()].color_space;
      BitVector bm(static_cast<std::size_t>(cs.volume()));
      result.bitmask_bits += static_cast<uint64_t>(cs.volume());

      // Writes (and reductions) probe-and-set first...
      for (std::size_t idx : comp) {
        const CheckArg& a = args[idx];
        if (!privilege_writes(a.priv)) continue;
        IDXL_ASSERT(a.functor != nullptr);
        if (run_arg_pass(*a.functor, a.color_space, domain, bm, /*set_bit=*/true,
                         result.points_evaluated)) {
          result.safe = false;
          return result;
        }
      }
      // ...then read-only arguments probe without setting, so reads collide
      // with writes but not with each other.
      for (std::size_t idx : comp) {
        const CheckArg& a = args[idx];
        if (privilege_writes(a.priv)) continue;
        IDXL_ASSERT(a.functor != nullptr);
        if (run_arg_pass(*a.functor, a.color_space, domain, bm, /*set_bit=*/false,
                         result.points_evaluated)) {
          result.safe = false;
          return result;
        }
      }
    }
  }
  return result;
}

}  // namespace idxl
