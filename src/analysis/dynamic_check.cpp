#include "analysis/dynamic_check.hpp"

#include <algorithm>
#include <optional>

#include "analysis/patterns.hpp"

namespace idxl {

namespace {
// The dynamic check specializes its evaluation loop for the Poly1 and
// ModLinear shapes (analysis/patterns.hpp) — the interpreter analogue of
// the inline code Regent generates — so Table 2's constant factors stay in
// the same regime as the paper's.

/// Listing 3's inner step: bounds-check the linearized color, then probe the
/// bitmask (and set it for write/reduce passes). Returns true on conflict.
inline bool probe(BitVector& bm, int64_t value, int64_t volume, bool set_bit) {
  if (value < 0 || value >= volume) return false;  // out-of-bounds color: skip
  const auto idx = static_cast<std::size_t>(value);
  if (set_bit) return bm.test_and_set(idx);
  return bm.test(idx);
}

/// Where a pass found its conflict: the launch point and the linearized
/// color it collided on. Only written on the (cold) failure path.
struct ConflictInfo {
  Point point;
  int64_t color_idx = 0;
};

/// Evaluate one argument's functor over the whole launch domain against a
/// shared bitmask. `set_bit` is true for write/reduce arguments. Returns
/// true as soon as a conflict is found, recording it in `conflict`.
bool run_arg_pass(const ProjectionFunctor& f, const Rect& color_space,
                  const Domain& domain, BitVector& bm, bool set_bit,
                  uint64_t& evals, ConflictInfo& conflict_info) {
  const int64_t volume = color_space.volume();

  // Fast paths: 1-D dense launch domain, 1-D symbolic functor, 1-D colors.
  if (domain.dense() && domain.dim() == 1 && color_space.dim() == 1 &&
      f.is_symbolic() && f.output_dim() == 1) {
    const int64_t lo = domain.bounds().lo[0], hi = domain.bounds().hi[0];
    const int64_t base = color_space.lo[0];
    const Expr& e = *f.exprs()[0];
    if (auto p = match_poly1(e)) {
      for (int64_t i = lo; i <= hi; ++i) {
        ++evals;
        if (probe(bm, p->eval(i) - base, volume, set_bit)) {
          conflict_info = {Point::p1(i), p->eval(i) - base};
          return true;
        }
      }
      return false;
    }
    if (auto m = match_modlinear(e)) {
      for (int64_t i = lo; i <= hi; ++i) {
        ++evals;
        if (probe(bm, m->eval(i) - base, volume, set_bit)) {
          conflict_info = {Point::p1(i), m->eval(i) - base};
          return true;
        }
      }
      return false;
    }
    f.ensure_compiled();
    Point pt = Point::p1(0);
    int64_t value = 0;
    for (int64_t i = lo; i <= hi; ++i) {
      pt.c[0] = i;
      f.eval_into(pt, &value);
      ++evals;
      if (probe(bm, value - base, volume, set_bit)) {
        conflict_info = {Point::p1(i), value - base};
        return true;
      }
    }
    return false;
  }

  // General path: any dimensionality, dense or sparse domain. Linearize the
  // color tuple through the color space's bounding rect (the paper's
  // `linearize`, §4), rejecting per-axis out-of-bounds colors first.
  f.ensure_compiled();
  bool conflict = false;
  int64_t coords[kMaxDim];
  domain.for_each([&](const Point& p) {
    if (conflict) return;
    f.eval_into(p, coords);
    ++evals;
    int64_t idx = 0;
    for (int d = 0; d < color_space.dim(); ++d) {
      if (coords[d] < color_space.lo[d] || coords[d] > color_space.hi[d]) return;
      idx = idx * (color_space.hi[d] - color_space.lo[d] + 1) +
            (coords[d] - color_space.lo[d]);
    }
    if (probe(bm, idx, volume, set_bit)) {
      conflict = true;
      conflict_info = {p, idx};
    }
  });
  return conflict;
}

/// Linearized in-bounds color of `f` at `p`, or nullopt when any coordinate
/// falls outside the color space (such points never touch the bitmask).
std::optional<int64_t> linearize_color(const ProjectionFunctor& f, const Point& p,
                                       const Rect& cs) {
  int64_t coords[kMaxDim];
  f.eval_into(p, coords);
  int64_t idx = 0;
  for (int d = 0; d < cs.dim(); ++d) {
    if (coords[d] < cs.lo[d] || coords[d] > cs.hi[d]) return std::nullopt;
    idx = idx * (cs.hi[d] - cs.lo[d] + 1) + (coords[d] - cs.lo[d]);
  }
  return idx;
}

/// Failure-path witness reconstruction: replay the bit-setting passes in
/// their original order and return the first (arg, point) that mapped to
/// `color_idx` — i.e. whoever set the bit the conflicting access tripped
/// over. Stops (defensively) at the conflict itself.
std::optional<std::pair<std::size_t, Point>> find_setter(
    std::span<const CheckArg> args, const std::vector<std::size_t>& setter_order,
    const Domain& domain, int64_t color_idx, std::size_t conflict_arg,
    const Point& conflict_point) {
  for (const std::size_t k : setter_order) {
    const CheckArg& a = args[k];
    a.functor->ensure_compiled();
    bool found = false, aborted = false;
    Point found_point;
    domain.for_each([&](const Point& p) {
      if (found || aborted) return;
      if (k == conflict_arg && p == conflict_point) {
        aborted = true;
        return;
      }
      const auto idx = linearize_color(*a.functor, p, a.color_space);
      if (idx && *idx == color_idx) {
        found = true;
        found_point = p;
      }
    });
    if (found) return std::make_pair(k, found_point);
    if (aborted) break;
  }
  return std::nullopt;
}

}  // namespace

DynamicCheckResult dynamic_self_check(const ProjectionFunctor& f,
                                      const Rect& color_space, const Domain& domain) {
  IDXL_REQUIRE(f.output_dim() == color_space.dim(),
               "functor output dimensionality must match the color space");
  DynamicCheckResult result;
  BitVector bm(static_cast<std::size_t>(color_space.volume()));
  result.bitmask_bits = static_cast<uint64_t>(color_space.volume());
  ConflictInfo conflict;
  result.safe = !run_arg_pass(f, color_space, domain, bm, /*set_bit=*/true,
                              result.points_evaluated, conflict);
  if (!result.safe) {
    RaceWitness w;
    w.p2 = conflict.point;
    w.color = color_space.delinearize(conflict.color_idx);
    // The earlier point that set the bit: first domain point (before the
    // conflict in enumeration order) mapping to the same color.
    bool found = false;
    f.ensure_compiled();
    domain.for_each([&](const Point& p) {
      if (found || p == conflict.point) return;
      const auto idx = linearize_color(f, p, color_space);
      if (idx && *idx == conflict.color_idx) {
        found = true;
        w.p1 = p;
      }
    });
    if (!found) w.p1 = conflict.point;  // defensive; a setter always exists
    result.witness = w;
  }
  return result;
}

DynamicCheckResult dynamic_cross_check(std::span<const CheckArg> args,
                                       const Domain& domain) {
  DynamicCheckResult result;

  // Group arguments by partition (§4: linear time via a shared bitmask
  // instead of quadratic pairwise checks), then split each group into
  // field-connected components: arguments whose field sets are disjoint can
  // never interfere, so they must not share a bitmask (a shared one would
  // manufacture spurious conflicts).
  std::vector<uint32_t> uids;
  for (const CheckArg& a : args) uids.push_back(a.partition_uid);
  std::sort(uids.begin(), uids.end());
  uids.erase(std::unique(uids.begin(), uids.end()), uids.end());

  for (uint32_t uid : uids) {
    std::vector<std::size_t> group;
    for (std::size_t i = 0; i < args.size(); ++i)
      if (args[i].partition_uid == uid) group.push_back(i);

    std::vector<bool> assigned(group.size(), false);
    for (std::size_t seed = 0; seed < group.size(); ++seed) {
      if (assigned[seed]) continue;
      // Grow the field-connected component containing `seed`.
      std::vector<std::size_t> comp{group[seed]};
      assigned[seed] = true;
      uint64_t comp_mask = args[group[seed]].field_mask;
      for (bool grew = true; grew;) {
        grew = false;
        for (std::size_t k = 0; k < group.size(); ++k) {
          if (assigned[k] || !(args[group[k]].field_mask & comp_mask)) continue;
          assigned[k] = true;
          comp.push_back(group[k]);
          comp_mask |= args[group[k]].field_mask;
          grew = true;
        }
      }

      // Skip components with no writer: reads never conflict with reads.
      bool any_writer = false;
      for (std::size_t idx : comp)
        if (privilege_writes(args[idx].priv)) any_writer = true;
      if (!any_writer) continue;

      const Rect& cs = args[comp.front()].color_space;
      BitVector bm(static_cast<std::size_t>(cs.volume()));
      result.bitmask_bits += static_cast<uint64_t>(cs.volume());

      // On conflict: rebuild the concrete racing pair by replaying the
      // writers already processed (diagnostics only — the passing path
      // never runs this).
      std::vector<std::size_t> writers_processed;
      const auto fail_with_witness = [&](std::size_t arg_idx,
                                         const ConflictInfo& conflict) {
        result.safe = false;
        RaceWitness w;
        w.arg_j = static_cast<uint32_t>(arg_idx);
        w.p2 = conflict.point;
        w.color = args[arg_idx].color_space.delinearize(conflict.color_idx);
        if (const auto setter =
                find_setter(args, writers_processed, domain, conflict.color_idx,
                            arg_idx, conflict.point)) {
          w.arg_i = static_cast<uint32_t>(setter->first);
          w.p1 = setter->second;
        } else {
          w.arg_i = w.arg_j;  // defensive; a setter always exists
          w.p1 = w.p2;
        }
        result.witness = w;
      };

      // Writes (and reductions) probe-and-set first...
      for (std::size_t idx : comp) {
        const CheckArg& a = args[idx];
        if (!privilege_writes(a.priv)) continue;
        IDXL_ASSERT(a.functor != nullptr);
        writers_processed.push_back(idx);
        ConflictInfo conflict;
        if (run_arg_pass(*a.functor, a.color_space, domain, bm, /*set_bit=*/true,
                         result.points_evaluated, conflict)) {
          fail_with_witness(idx, conflict);
          return result;
        }
      }
      // ...then read-only arguments probe without setting, so reads collide
      // with writes but not with each other.
      for (std::size_t idx : comp) {
        const CheckArg& a = args[idx];
        if (privilege_writes(a.priv)) continue;
        IDXL_ASSERT(a.functor != nullptr);
        ConflictInfo conflict;
        if (run_arg_pass(*a.functor, a.color_space, domain, bm, /*set_bit=*/false,
                         result.points_evaluated, conflict)) {
          fail_with_witness(idx, conflict);
          return result;
        }
      }
    }
  }
  return result;
}

}  // namespace idxl
