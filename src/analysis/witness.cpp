#include "analysis/witness.hpp"

namespace idxl {

std::string RaceWitness::to_string() const {
  std::string s = "tasks " + p1.to_string() + " (arg " + std::to_string(arg_i) +
                  ") and " + p2.to_string() + " (arg " + std::to_string(arg_j) +
                  ") collide on color " + color.to_string();
  return s;
}

bool witness_valid(const ProjectionFunctor& fi, const ProjectionFunctor& fj,
                   const Domain& domain, const RaceWitness& w) {
  if (!domain.contains(w.p1) || !domain.contains(w.p2)) return false;
  if (w.arg_i == w.arg_j && w.p1 == w.p2) return false;
  return fi(w.p1) == w.color && fj(w.p2) == w.color;
}

bool witness_valid(const ProjectionFunctor& f, const Domain& domain,
                   const RaceWitness& w) {
  if (w.p1 == w.p2) return false;
  return witness_valid(f, f, domain, w);
}

bool pair_witness_valid(const ProjectionFunctor& fa, const Domain& da,
                        const ProjectionFunctor& fb, const Domain& db,
                        const RaceWitness& w) {
  if (!da.contains(w.p1) || !db.contains(w.p2)) return false;
  return fa(w.p1) == w.color && fb(w.p2) == w.color;
}

}  // namespace idxl
