#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "runtime/fault.hpp"
#include "runtime/types.hpp"

namespace idxl {

/// Every serialized descriptor opens with a 5-byte header: a magic word
/// identifying the stream as an idxl descriptor and a version byte bumped on
/// any incompatible layout change. Deserializers reject mismatches up front
/// with a targeted error instead of misparsing the payload — required before
/// descriptors cross process boundaries (src/net frames carry their own
/// transport-level magic; this one covers the descriptor payload itself).
inline constexpr uint32_t kWireMagic = 0x4C584449;  // "IDXL", little-endian
inline constexpr uint8_t kWireVersion = 4;  // v4: trace context on launchers
                                            // and data-plane payloads (v3:
                                            // Route/RegionData, slim outcomes)

/// Wire format for launch descriptors.
///
/// The paper's central representation claim is that an index launch is an
/// O(1) description of |D| tasks: what travels through the runtime (and, in
/// the non-DCR pipeline, over the broadcast tree) is a fixed-size
/// descriptor — domain bounds, task id, and per-argument
/// ⟨partition, functor, privilege⟩ tuples — never per-task state. This
/// serializer makes that claim concrete and testable: for dense launch
/// domains the encoded size is independent of the domain volume
/// (tests assert it), and it is what the slice messages of the simulator's
/// distribution stage are sized from.
///
/// Sparse launch domains (DOM wavefronts) encode their point lists — an
/// O(|D|) payload by necessity; the compact form applies to the dense case,
/// exactly as in Legion.

/// Append-only byte sink with primitive encoders.
class Serializer {
 public:
  void put_u8(uint8_t v) { bytes_.push_back(static_cast<std::byte>(v)); }
  void put_u32(uint32_t v);
  void put_u64(uint64_t v) { put_i64(static_cast<int64_t>(v)); }
  void put_i64(int64_t v);
  void put_f64(double v);
  void put_point(const Point& p);
  /// Length-prefixed (u32) byte blob / UTF-8 string.
  void put_blob(const std::vector<std::byte>& blob);
  void put_string(const std::string& s);
  /// The 5-byte ⟨magic, version⟩ descriptor header.
  void put_header();

  const std::vector<std::byte>& bytes() const { return bytes_; }
  std::size_t size() const { return bytes_.size(); }
  std::vector<std::byte> take() { return std::move(bytes_); }

 private:
  std::vector<std::byte> bytes_;
};

/// Cursor-based reader; throws RuntimeError on truncated input.
class Deserializer {
 public:
  explicit Deserializer(const std::vector<std::byte>& bytes) : bytes_(&bytes) {}

  uint8_t get_u8();
  uint32_t get_u32();
  uint64_t get_u64() { return static_cast<uint64_t>(get_i64()); }
  int64_t get_i64();
  double get_f64();
  Point get_point();
  std::vector<std::byte> get_blob();
  std::string get_string();
  /// Consume the descriptor header; throws RuntimeError naming `what` on a
  /// magic or version mismatch.
  void check_header(const char* what);
  bool done() const { return cursor_ == bytes_->size(); }

 private:
  const std::vector<std::byte>* bytes_;
  std::size_t cursor_ = 0;
};

/// Encode / decode projection-functor expression trees. Opaque functors are
/// not serializable (they are process-local callables) — IDXL_REQUIREd out.
void serialize_expr(Serializer& s, const Expr& e);
ExprPtr deserialize_expr(Deserializer& d);

void serialize_domain(Serializer& s, const Domain& domain);
Domain deserialize_domain(Deserializer& d);

/// Encode the full index-launch descriptor (task, domain, args; scalar
/// argument bytes are included verbatim). The encoding opens with the
/// ⟨magic, version⟩ header; deserialize_launcher rejects mismatches.
std::vector<std::byte> serialize_launcher(const IndexLauncher& launcher);
IndexLauncher deserialize_launcher(const std::vector<std::byte>& bytes);

/// Single-task launcher descriptor (concrete regions instead of projected
/// partitions), used by the distributed runtime to replicate fills and other
/// single launches. Same header/versioning rules as the index form.
std::vector<std::byte> serialize_task_launcher(const TaskLauncher& launcher);
TaskLauncher deserialize_task_launcher(const std::vector<std::byte>& bytes);

/// Fault records cross process boundaries at fences: every rank serializes
/// its FaultReport and the driver verifies the replicated reports agree.
void serialize_fault(Serializer& s, const TaskFault& fault);
TaskFault deserialize_fault(Deserializer& d);
std::vector<std::byte> serialize_fault_report(const FaultReport& report);
FaultReport deserialize_fault_report(const std::vector<std::byte>& bytes);

}  // namespace idxl
