#pragma once

#include <cstddef>
#include <vector>

#include "runtime/types.hpp"

namespace idxl {

/// Wire format for launch descriptors.
///
/// The paper's central representation claim is that an index launch is an
/// O(1) description of |D| tasks: what travels through the runtime (and, in
/// the non-DCR pipeline, over the broadcast tree) is a fixed-size
/// descriptor — domain bounds, task id, and per-argument
/// ⟨partition, functor, privilege⟩ tuples — never per-task state. This
/// serializer makes that claim concrete and testable: for dense launch
/// domains the encoded size is independent of the domain volume
/// (tests assert it), and it is what the slice messages of the simulator's
/// distribution stage are sized from.
///
/// Sparse launch domains (DOM wavefronts) encode their point lists — an
/// O(|D|) payload by necessity; the compact form applies to the dense case,
/// exactly as in Legion.

/// Append-only byte sink with primitive encoders.
class Serializer {
 public:
  void put_u8(uint8_t v) { bytes_.push_back(static_cast<std::byte>(v)); }
  void put_u32(uint32_t v);
  void put_i64(int64_t v);
  void put_point(const Point& p);

  const std::vector<std::byte>& bytes() const { return bytes_; }
  std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::byte> bytes_;
};

/// Cursor-based reader; throws RuntimeError on truncated input.
class Deserializer {
 public:
  explicit Deserializer(const std::vector<std::byte>& bytes) : bytes_(&bytes) {}

  uint8_t get_u8();
  uint32_t get_u32();
  int64_t get_i64();
  Point get_point();
  bool done() const { return cursor_ == bytes_->size(); }

 private:
  const std::vector<std::byte>* bytes_;
  std::size_t cursor_ = 0;
};

/// Encode / decode projection-functor expression trees. Opaque functors are
/// not serializable (they are process-local callables) — IDXL_REQUIREd out.
void serialize_expr(Serializer& s, const Expr& e);
ExprPtr deserialize_expr(Deserializer& d);

void serialize_domain(Serializer& s, const Domain& domain);
Domain deserialize_domain(Deserializer& d);

/// Encode the full index-launch descriptor (task, domain, args; scalar
/// argument bytes are included verbatim).
std::vector<std::byte> serialize_launcher(const IndexLauncher& launcher);
IndexLauncher deserialize_launcher(const std::vector<std::byte>& bytes);

}  // namespace idxl
