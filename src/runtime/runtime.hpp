#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "analysis/hybrid.hpp"
#include "analysis/interference.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/watchdog.hpp"
#include "runtime/api.hpp"
#include "runtime/dependence.hpp"
#include "runtime/fault.hpp"
#include "runtime/group_dependence.hpp"
#include "runtime/physical.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/types.hpp"

namespace idxl {

struct RuntimeConfig {
  /// Worker threads for the real executor (0 = hardware concurrency).
  unsigned workers = 0;
  /// When false, execute_index() degrades to the per-point task loop — the
  /// "No IDX" configurations of the paper's evaluation.
  bool enable_index_launches = true;
  /// §4: dynamic checks can be disabled once a program has been verified.
  bool enable_dynamic_checks = true;
  /// Extended static classifier (modular / monotone-quadratic families) —
  /// launches it discharges skip their dynamic checks entirely.
  bool extended_static_analysis = false;
  /// When true, an unsafe launch throws instead of falling back to the
  /// sequential task loop (useful in tests; production Regent emits the
  /// fallback branch, which is our default).
  bool strict_unsafe = false;
  /// Record every task and dependence edge for export_task_graph_dot() —
  /// the Fig. 1-style task-graph inspector. Costs memory per task; off by
  /// default.
  bool record_task_graph = false;
  /// Record per-event spans (issuance, dependence analysis, safety checks,
  /// task execution, ...) into Runtime::profiler(). Off by default: the
  /// disabled path costs one branch per instrumentation point.
  bool enable_profiling = false;
  /// Reuse safety verdicts across repeated launches of the same site (same
  /// functor fingerprints, domain, privileges): the common case in iterative
  /// workloads, where re-running even the static analysis per launch is
  /// pure overhead. Opaque functors are never cached.
  bool enable_verdict_cache = true;
  /// Group-level dependence analysis (§5): when a safe index launch's every
  /// region argument goes through a disjoint partition with an analyzable
  /// (symbolic) functor, order the *launch* with one summary test per
  /// argument and per-color list walks instead of |D| per-point tracker
  /// scans, and build point closures on pool workers. Set false to force
  /// the per-point path everywhere (differential testing, perf baselines).
  bool enable_group_analysis = true;
  /// Inter-launch interference analysis: prove *pairs of launches* disjoint
  /// (residue-class / interval-gap image separation, disjoint fields) so the
  /// group tracker skips its per-color dependence walks across launches.
  /// Every skip is backed by a certificate the independent CertificateChecker
  /// re-validated — the runtime refuses uncertified skips by construction.
  bool enable_interference_analysis = true;
  /// Never run the pair analyzer locally: only certificates imported through
  /// import_interference_bundle() (and re-validated here) may authorize
  /// skips. Distributed workers set this — the driver analyzes once and
  /// ships proofs, workers check instead of re-deriving (docs/ANALYSIS.md).
  bool interference_import_only = false;
  /// Task-lifecycle flight recorder (obs/flight_recorder.hpp): per-worker
  /// ring buffers of issued/analyzed/ready/running/complete events, the
  /// always-on black box stall dumps read. Cheap (batched ring appends);
  /// on by default. Env override: IDXL_FLIGHT_RECORDER=0/1.
  bool enable_flight_recorder = true;
  /// Events retained per recording thread. Env: IDXL_FLIGHT_CAPACITY.
  std::size_t flight_recorder_capacity = obs::FlightRecorder::kDefaultCapacity;
  /// Stall watchdog: a monitor thread that dumps the waits-for graph,
  /// flight-recorder tail and a metrics snapshot when tasks stay pending
  /// with no completions for a whole stall window. Off by default (it adds
  /// a live-task table update per task). Env: IDXL_WATCHDOG=0/1.
  bool enable_watchdog = false;
  /// Monitor sampling period. Env: IDXL_WATCHDOG_PERIOD_MS.
  uint32_t watchdog_check_period_ms = 50;
  /// No-progress window before a stall is declared. Env: IDXL_WATCHDOG_WINDOW_MS.
  uint32_t watchdog_stall_window_ms = 1000;
  /// Lifecycle events included in a stall dump.
  std::size_t watchdog_tail_events = 32;
  /// Abort after dumping (post-mortem over hang). Env: IDXL_WATCHDOG_ABORT.
  bool watchdog_abort = false;
  /// Graceful degradation: on a stall, cancel the run (Runtime::cancel_all)
  /// so blocked work drains as cancelled/poisoned into the FaultReport
  /// instead of hanging. Env: IDXL_WATCHDOG_CANCEL.
  bool watchdog_cancel = false;
  /// Dump destination; empty = stderr. Env: IDXL_WATCHDOG_DUMP.
  std::string watchdog_dump_path;
  /// Deterministic fault-injection plan (tests, soak CI). Every task
  /// execution consults should_fail(launch, point, attempt); a hit fails
  /// the attempt as FaultKind::kInjected. The IDXL_FAULT_PLAN env spec
  /// (see FaultPlan::parse) overrides this field.
  std::shared_ptr<const FaultPlan> fault_plan;

  // --- distributed-execution hooks (src/dist; docs/DISTRIBUTED.md) -------
  /// Point-ownership predicate. When set, points for which it returns false
  /// become *external* nodes: placeholders in the dependence graph that
  /// never run a body locally and complete only when the owning process
  /// delivers their outcome through Runtime::complete_external(). Every
  /// rank of a distributed run issues the identical launch stream, so seq
  /// numbers (and hence the graph) agree across processes.
  std::function<bool(uint64_t launch, const Point& point, const Domain& domain)>
      point_owned;
  /// Called on the executing worker thread after an *owned* task body
  /// succeeds, while its TaskContext (mapped regions included) is still
  /// alive — the distributed runtime extracts written-region bytes and the
  /// return value here and ships them to the other processes.
  std::function<void(uint64_t seq, uint64_t launch, const Point& point,
                     TaskContext& ctx)>
      on_task_success;
  /// Called when an *owned* task settles in a terminal fault state (external
  /// nodes are excluded: their fault came from the owner in the first
  /// place, so re-broadcasting would loop).
  std::function<void(const TaskFault& fault)> on_task_fault;
};

// RuntimeStats, Future and LaunchResult moved to runtime/api.hpp with the
// RuntimeApi extraction; this header re-exports them via that include.

/// The real, in-process runtime: sequential task issuance with implicit
/// parallel execution on a thread pool, Legion-style. One instance per
/// "program". Issuance calls (execute, execute_index, region/partition
/// creation) must come from a single thread; task bodies run concurrently.
class Runtime : public RuntimeApi {
 public:
  /// `forest` shares a region forest with the caller (the distributed
  /// runtime pre-builds it before forking workers); default is a private
  /// one.
  explicit Runtime(RuntimeConfig config = {},
                   std::shared_ptr<RegionForest> forest = nullptr);
  ~Runtime() override;

  RegionForest& forest() override { return *forest_; }
  const RuntimeConfig& config() const { return config_; }

  /// Register a task body under a new id.
  TaskFnId register_task(std::string name, TaskFn fn) override;

  /// Launch a single task (program-order semantics; §2).
  LaunchResult execute(const TaskLauncher& launcher) override;

  /// Launch |domain| tasks as one index launch (§3). Runs the hybrid safety
  /// analysis; an unsafe launch falls back to the equivalent sequential
  /// task loop (Listing 3's generated branch) unless strict_unsafe is set.
  LaunchResult execute_index(const IndexLauncher& launcher) override;

  /// Dynamic tracing (Lee et al. [20]): capture the dependence analysis of
  /// the bracketed launches on first execution, replay it afterwards.
  /// Traces are fenced on both sides (a legal restriction of parallelism).
  void begin_trace(uint32_t trace_id);
  void end_trace(uint32_t trace_id);

  /// Block until all issued tasks have executed — including external
  /// (remote-owned) nodes, which complete when their outcomes arrive via
  /// complete_external().
  void wait_all() override;

  /// Structured outcome of every failure so far: root causes plus the
  /// poisoned closure, sorted by task seq (deterministic for a seeded
  /// FaultPlan). Call after wait_all(); empty report = clean run.
  FaultReport fault_report() const override { return faults_.report(); }

  /// Deliver the terminal outcome of external task `seq` (it was issued
  /// with RuntimeConfig::point_owned returning false). Thread-safe; called
  /// by the distributed runtime's receive threads. Outcomes may arrive
  /// before the launch frame that issues `seq` has been processed — they
  /// are buffered and applied at issue time.
  void complete_external(uint64_t seq, RemoteOutcome outcome);

  /// Resolve every still-pending external node as kCancelled with `why` as
  /// the message. Called when the peer that owned those tasks is gone, so
  /// wait_all() and the destructor cannot hang on outcomes that will never
  /// arrive. Idempotent; safe to call with no externals pending.
  void abandon_externals(const std::string& why);

  /// Debug introspection: (seq, label) of every external node still waiting
  /// for its remote outcome. Thread-safe snapshot.
  std::vector<std::pair<uint64_t, std::string>> pending_externals() const;

  /// The launch id the next execute()/execute_index() will be assigned.
  /// Under control replication every rank issues the identical stream, so
  /// the driver can stamp this value into a descriptor's trace context and
  /// replicas assert their own counter agrees (divergence = replication
  /// bug). Only meaningful from the issuing thread.
  uint64_t peek_next_launch_id() const { return next_launch_id_; }

  /// Drop accumulated fault records and re-arm after cancel_all(), so the
  /// runtime can be reused for another program phase.
  void clear_faults();

  /// Cooperatively cancel the run: queued tasks terminate as kCancelled
  /// before their bodies start; running bodies observe
  /// TaskContext::cancelled(). The watchdog's cancel_on_stall action.
  void cancel_all();

  // read_region<T>() and fill<T>() are inherited from RuntimeApi:
  // sync_for_read() is a no-op here (callers wait_all() first, as before)
  // and fill lowers to the fill_bytes_region task below.
  void sync_for_read() override {}

  /// Fill a field of a region with a byte pattern (at most 16 bytes), as a
  /// task: the fill is ordered against every launch touching that data, so
  /// it is safe to issue mid-program (unlike raw top-level accessor writes,
  /// which are only valid before the first launch or after wait_all()).
  void fill_bytes_region(RegionId r, FieldId f, const void* pattern,
                         std::size_t size) override;

  /// Live snapshot of the runtime counters, assembled from one pass over
  /// the metrics registry (obs::MetricsRegistry::snapshot()): every field
  /// is a registry-backed atomic, so stats() is safe to call from any
  /// thread while tasks run, and one call reads all counters in a single
  /// traversal instead of field-by-field at different times.
  RuntimeStats stats() const override;

  /// The metrics registry backing stats(): every runtime counter, the
  /// verdict-cache and dependence-tracker counters, pool gauges and task
  /// latency histograms, one `snapshot()` away — exportable as Prometheus
  /// text or JSON. Per-runtime (concurrent runtimes never share series);
  /// obs::MetricsRegistry::global() is the place for application metrics.
  obs::MetricsRegistry& metrics() override { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// The task-lifecycle flight recorder (on by default; records nothing
  /// when RuntimeConfig::enable_flight_recorder is false).
  obs::FlightRecorder& flight_recorder() { return recorder_; }
  const obs::FlightRecorder& flight_recorder() const { return recorder_; }

  /// Switch task-lifecycle recording on or off at run time (e.g. enable it
  /// only around a suspect phase). Requires a quiescent runtime — call
  /// after wait_all(); in-flight work reads the recorder unsynchronized.
  /// Re-enabling requires the recorder to have been constructed enabled
  /// (RuntimeConfig::enable_flight_recorder at build time).
  void set_flight_recording(bool on) { rec_ = on ? &recorder_ : nullptr; }
  bool flight_recording() const { return rec_ != nullptr; }

  /// The stall watchdog, or nullptr unless RuntimeConfig::enable_watchdog
  /// (or IDXL_WATCHDOG=1) switched it on.
  obs::Watchdog* watchdog() { return watchdog_.get(); }

  /// Build a stall report on demand: the waits-for graph of issued-but-
  /// incomplete tasks (populated only while the watchdog is enabled), the
  /// flight-recorder tail, and a metrics snapshot. The same dump the
  /// watchdog emits, minus the progress-window fields.
  obs::StallReport stall_report() const;

  /// The worker pool. Tests use pause()/resume() as a deterministic gate:
  /// launches issued against a paused pool enqueue without executing, so
  /// every issued-but-ungated task is still live when later launches are
  /// analyzed — no timing assumptions.
  ThreadPool& pool() { return *pool_; }

  /// The launch-site verdict cache (populated only when
  /// RuntimeConfig::enable_verdict_cache is set).
  VerdictCache& verdict_cache() { return verdict_cache_; }
  const VerdictCache& verdict_cache() const { return verdict_cache_; }

  /// The inter-launch pair-verdict cache (populated only when
  /// RuntimeConfig::enable_interference_analysis is set). Shared-safe:
  /// internal mutex, like VerdictCache.
  InterferenceCache& interference_cache() { return interference_cache_; }
  const InterferenceCache& interference_cache() const { return interference_cache_; }

  /// Serialize every checked kDisjoint pair certificate for shipping to a
  /// worker rank (see encode_interference_bundle).
  std::vector<std::byte> export_interference_bundle() const;
  /// Install certificates from a remote driver. Entries go in *unchecked*;
  /// the first lookup re-validates each certificate against the live launch
  /// descriptors and rejects-and-erases forgeries. A malformed bundle is
  /// refused wholesale.
  void import_interference_bundle(const std::vector<std::byte>& bytes);

  /// The observability subsystem: span events, Chrome-trace export,
  /// critical-path analysis, summary reports. Always present; it records
  /// nothing unless RuntimeConfig::enable_profiling was set.
  Profiler& profiler() { return *profiler_; }
  const Profiler& profiler() const { return *profiler_; }

  /// Graphviz DOT of every task issued so far and the dependence edges the
  /// analysis discovered (requires RuntimeConfig::record_task_graph).
  /// Render with `dot -Tsvg` to get the paper's Figure-1-style pictures of
  /// your own program.
  std::string export_task_graph_dot() const;

  /// Raw recorded task graph (requires RuntimeConfig::record_task_graph):
  /// nodes as (seq, label), edges as (from_seq, to_seq). The happens-before
  /// relation tests compare across configurations.
  const std::vector<std::pair<uint64_t, std::string>>& task_graph_nodes() const {
    return graph_nodes_;
  }
  const std::vector<std::pair<uint64_t, uint64_t>>& task_graph_edges() const {
    return graph_edges_;
  }

 private:
  friend class Future;  // Future::get records its reduction span

  struct FillArgs {
    FieldId field = 0;
    std::size_t size = 0;
    unsigned char pattern[16] = {};
  };

  /// Lazily registered internal task backing fill<T>().
  TaskFnId fill_task();

  struct TraceStep {
    TaskFnId fn = 0;
    Point point;
    std::vector<uint32_t> ispaces;       // one per region arg, for validation
    std::vector<uint32_t> dep_indices;   // trace-local predecessor indices
  };
  struct Trace {
    bool captured = false;
    std::vector<TraceStep> steps;
  };

  /// Per-launch retry/timeout knobs, copied from the launcher onto every
  /// TaskNode it expands into.
  struct RetryPolicy {
    uint32_t retries = 0;
    uint32_t backoff_ms = 0;
    uint32_t timeout_ms = 0;
  };
  static const RetryPolicy kNoRetry;

  /// Issue one point task: map regions, discover dependencies (or replay
  /// them from the active trace), hand to the scheduler. `collect`/`rank`
  /// route the task's return value into a pending Future.
  void issue_point_task(TaskFnId fn, const Point& point, const Domain& launch_domain,
                        const std::vector<RegionArg>& args,
                        const ArgBuffer& scalar_args, uint64_t launch_id,
                        const std::shared_ptr<Future::State>& collect = nullptr,
                        int64_t rank = -1, const RetryPolicy& policy = kNoRetry,
                        bool internal = false);

  void expand_as_task_loop(const IndexLauncher& launcher, uint64_t launch_id,
                           const std::shared_ptr<Future::State>& collect);
  std::vector<RegionArg> project_args(const IndexLauncher& launcher, const Point& p);

  /// Bulk expansion of a safe index launch: the issuing thread walks the
  /// domain once — wiring dependence edges through the group tracker
  /// (group_mode) or the per-point tracker — while point closures
  /// (PhysicalRegion vectors, argument copies) are built by chunk jobs on
  /// pool workers, gated by an extra "closure guard" on each node's pending
  /// count. Shares per-launch state with the workers through a LaunchArena.
  struct LaunchArena;
  void expand_index_launch(const IndexLauncher& launcher, uint64_t launch_id,
                           const std::shared_ptr<Future::State>& collect,
                           bool group_mode, SafetyOutcome outcome);
  /// Inter-launch short-circuit: is `s` certified kDisjoint against *every*
  /// summary recorded on `tree` since the last fence? Consults the
  /// interference cache first; analyzes (and caches) on a miss unless the
  /// runtime is import-only. `fp` is s's memoized fingerprint. Thin stats-
  /// and-profiling wrapper over InterferenceHistory::certified_disjoint.
  bool history_certified_disjoint(uint32_t tree, const LaunchArgSummary& s,
                                  LazyFingerprint& fp);
  /// All-args qualification for the group path (disjoint partitions,
  /// symbolic functors, uncontaminated trees, one partition per tree).
  bool group_eligible(const IndexLauncher& launcher);
  /// Flush any group state on `tree` into the per-point tracker before a
  /// per-point use touches it.
  void materialize_tree(uint32_t tree);
  /// Append a capture step for `node` to the active trace.
  void capture_trace_step(TaskFnId fn, const Point& point,
                          std::vector<uint32_t> ispaces,
                          const std::vector<TaskNodePtr>& deps,
                          const TaskNodePtr& node);
  /// Post-dependence bookkeeping shared by every issue path: dedupe (and
  /// self-filter) `deps`, record graph/profiler edges, update stats.
  void finalize_deps(const TaskNodePtr& node, std::vector<TaskNodePtr>& deps);

  /// Create the registry-backed stat cells and register the collector that
  /// refreshes externally-owned gauges (trackers, cache, pool, recorder).
  void init_metrics();
  /// Flight-record a kReady lifecycle event for `node` (edge = predecessor
  /// seq whose completion unblocked it last; kNone off the completion path).
  void record_ready(const TaskNode& node, uint64_t edge);

  void schedule(const TaskNodePtr& node, const std::vector<TaskNodePtr>& deps);
  void make_ready(const TaskNodePtr& node);
  /// The pool job that executes `node` then fans out to ready successors
  /// (batched through ThreadPool::submit_batch).
  std::function<void()> node_job(TaskNodePtr node);

  /// Settle `node` in a terminal fault state: record the TaskFault, emit
  /// metrics + flight event, then complete the node so successors drain —
  /// propagating `root` into their poison_root (atomic min) on the way.
  /// `attempts` is the number of body executions (0 when the body never ran).
  void finish_fault(const TaskNodePtr& node, FaultKind kind, uint64_t root,
                    uint32_t attempts, std::string message);
  /// Completion fan-out shared by the success and fault paths: complete the
  /// node, decrement successors (stamping `poison` into poison_root first
  /// when != kNone sentinel), record kReady events, submit newly ready jobs.
  void fan_out(const TaskNodePtr& node, uint64_t poison);
  obs::Counter& fault_cell(FaultKind kind);

  /// Registry-backed counter/gauge/histogram handles for every runtime
  /// stat — the write side of stats(). Updates are relaxed atomic adds.
  struct StatsCells {
    obs::Counter runtime_calls, single_launches, index_launches, point_tasks,
        tasks_completed, dependence_edges, safe_static, safe_dynamic,
        safe_unchecked, assumed_verified, unsafe, dynamic_check_points,
        traced_replayed, cache_hit_launches, cache_miss_launches,
        group_launches, group_edges, group_fallbacks, group_materializations,
        interference_pair_tests, interference_skips;
    obs::Counter fault_exception, fault_explicit, fault_injected, fault_timeout,
        fault_cancelled, fault_poisoned, fault_injections, retry_attempts,
        retry_succeeded;
    obs::Histogram task_duration, queue_wait;
  };

  /// One issued-but-incomplete task, for the watchdog's waits-for graph.
  /// Maintained only while the watchdog is enabled.
  struct LiveTask {
    std::string label;
    uint64_t launch = obs::FlightEvent::kNone;
    std::vector<uint64_t> deps;
  };

  /// Register `node` as external (remote-owned): mark it, add the remote
  /// guard to its pending count, and either adopt a buffered early outcome
  /// or index it for complete_external(). Must run before schedule() drops
  /// the issue guard.
  void register_external(const TaskNodePtr& node);
  /// Store `outcome` on `node` and release its remote guard.
  void deliver_external(const TaskNodePtr& node, RemoteOutcome outcome);

  RuntimeConfig config_;
  std::shared_ptr<RegionForest> forest_;
  DependenceTracker tracker_;
  GroupDependenceTracker group_;
  VerdictCache verdict_cache_;
  InterferenceCache interference_cache_;
  /// Per-tree launch-argument summaries recorded since the last fence —
  /// the "other side" of every inter-launch pair test. Mirrors the group
  /// tracker's lifecycle: entries are added only by group-path launches and
  /// cleared wherever the trackers fence (the cache itself persists — pair
  /// verdicts are properties of launch shapes, not of runtime state).
  InterferenceHistory interference_history_;
  // Observability members outlive the pool (declared first): workers
  // record spans, lifecycle events and counters until the pool's
  // destructor joins them.
  obs::MetricsRegistry metrics_;
  StatsCells cells_;
  std::unique_ptr<Profiler> profiler_;
  Profiler* prof_ = nullptr;  ///< == profiler_.get() iff profiling is enabled
  obs::FlightRecorder recorder_;
  obs::FlightRecorder* rec_ = nullptr;  ///< == &recorder_ iff recording is on
  std::unique_ptr<ThreadPool> pool_;
  // The watchdog thread reads members above; declared after the pool so it
  // is stopped/destroyed first (and explicitly stopped in ~Runtime).
  std::unique_ptr<obs::Watchdog> watchdog_;
  bool live_enabled_ = false;  ///< maintain the live-task table?
  mutable std::mutex live_mu_;
  std::unordered_map<uint64_t, LiveTask> live_;
  std::vector<std::pair<std::string, TaskFn>> task_registry_;
  std::vector<uint32_t> task_prof_names_;  ///< interned name per TaskFnId
  uint64_t next_seq_ = 0;
  uint64_t next_launch_id_ = 0;
  TaskFnId fill_task_ = UINT32_MAX;

  // --- fault tolerance ---
  FaultLog faults_;
  /// Fault count at the last on-fault auto-dump (wait_all); dumps fire
  /// only when the count moves so repeated fences stay quiet.
  uint64_t last_fault_dump_count_ = 0;
  std::shared_ptr<const FaultPlan> fault_plan_;  ///< config or IDXL_FAULT_PLAN
  std::atomic<bool> cancel_all_{false};
  uint64_t trace_fault_epoch_ = 0;  ///< faults_.epoch() at begin_trace

  // --- external (remote-owned) tasks -------------------------------------
  mutable std::mutex ext_mu_;
  std::condition_variable ext_cv_;  ///< signalled as externals_ drains
  /// Issued external nodes awaiting their remote outcome, by seq.
  std::unordered_map<uint64_t, TaskNodePtr> externals_;
  /// Outcomes that arrived before their seq was issued (the driver forwards
  /// a worker's TaskDone to the other workers ahead of the launch frame
  /// racing down the same program, never this process — but a worker's own
  /// issue loop can trail the forwarded stream).
  std::unordered_map<uint64_t, RemoteOutcome> early_outcomes_;

  // --- prototype PhysicalRegion cache (bulk expansion) ---
  // One table per (parent, partition, field mask, privilege, redop), holding
  // a per-color prototype the chunk jobs copy instead of touching the forest
  // from worker threads. Slots are filled by the issuing thread only, before
  // the chunk jobs that read them are submitted; tables are sized once so
  // filled slots stay address-stable.
  struct ProtoKey {
    uint32_t parent = 0;
    uint32_t partition = 0;
    uint64_t mask = 0;
    Privilege priv = Privilege::kRead;
    ReductionOp redop = ReductionOp::kNone;
    bool operator==(const ProtoKey&) const = default;
  };
  struct ProtoKeyHash {
    std::size_t operator()(const ProtoKey& k) const {
      uint64_t h = k.mask;
      h = h * 1099511628211ull ^ k.parent;
      h = h * 1099511628211ull ^ k.partition;
      h = h * 1099511628211ull ^ static_cast<uint64_t>(k.priv);
      h = h * 1099511628211ull ^ static_cast<uint64_t>(k.redop);
      return static_cast<std::size_t>(h);
    }
  };
  using ProtoTable = std::vector<std::optional<PhysicalRegion>>;
  std::unordered_map<ProtoKey, std::shared_ptr<ProtoTable>, ProtoKeyHash> proto_cache_;

  // --- task-graph recording (record_task_graph) ---
  std::vector<std::pair<uint64_t, std::string>> graph_nodes_;  // (seq, label)
  std::vector<std::pair<uint64_t, uint64_t>> graph_edges_;     // (from, to)

  // --- tracing state ---
  std::unordered_map<uint32_t, Trace> traces_;
  Trace* active_trace_ = nullptr;
  bool replaying_ = false;
  std::size_t replay_cursor_ = 0;
  std::vector<TaskNodePtr> trace_nodes_;  // nodes of the current capture/replay
  /// Trace-local index of each captured node (maintained alongside
  /// trace_nodes_, so capture is O(deps) per task instead of O(tasks)).
  std::unordered_map<const TaskNode*, uint32_t> trace_index_;
};

}  // namespace idxl
