#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "runtime/dependence.hpp"

namespace idxl {

/// Group-level dependence state, layered above the per-point
/// DependenceTracker (§5: reason about whole partitions at launch
/// granularity). While a region tree is only ever touched through one
/// disjoint partition by analyzable index launches, its uses are summarized
/// as one PartitionState: per-color writer/reader lists plus union field
/// masks. Ordering a new launch then costs one O(1) summary test per region
/// argument — `(writer_fields & fields) | (writes & reader_fields & fields)`
/// — and, only when that test fires, a direct per-color list walk per point
/// (no hash probes, no BVH, no domain tests). The per-color lists hold
/// exactly what the per-point tracker's per-ispace entries would hold, so
/// the emitted happens-before edges are identical to the per-point path's.
///
/// The moment a tree is touched any other way — a single-task launch, a
/// fill, an aliased partition, an opaque functor, a different partition —
/// the summary is materialized into the per-point tracker
/// (DependenceTracker::seed_entry per color) and the tree is marked
/// summarized-then-contaminated: subsequent launches on it take the
/// per-point path until the next fence (trace boundary or wait_all) wipes
/// both tiers.
///
/// Not thread-safe: issuing thread only, like DependenceTracker.
class GroupDependenceTracker {
 public:
  explicit GroupDependenceTracker(const RegionForest& forest) : forest_(&forest) {}

  /// Can launches on `tree` through disjoint partition `p` use the group
  /// path? True while the tree is uncontaminated and either unsummarized or
  /// already summarized by this same partition.
  bool groupable(uint32_t tree, PartitionId p) const {
    if (contaminated_.contains(tree)) return false;
    auto it = trees_.find(tree);
    return it == trees_.end() || it->second.partition == p;
  }

  /// Does `tree` currently hold group state that per-point analysis would
  /// miss? (If so, materialize_into() must run before any per-point use.)
  bool has_state(uint32_t tree) const { return trees_.contains(tree); }

  /// O(1) summary test: can a use of `tree` with `fields`/`writes` conflict
  /// with *any* recorded group use? False means the per-color walks can be
  /// skipped for the whole launch argument. The union masks never shrink
  /// (covering-write pruning leaves them stale-high), so false positives
  /// are possible but false negatives are not.
  bool summary_conflict(uint32_t tree, uint64_t fields, bool writes) const {
    auto it = trees_.find(tree);
    if (it == trees_.end()) return false;
    const PartitionState& ps = it->second;
    if (ps.writer_fields & fields) return true;
    return writes && (ps.reader_fields & fields);
  }

  /// Record that `node` (one point of a group launch) uses color `crank`
  /// of `tree`'s summarizing partition `p`, appending conflicting live
  /// predecessors to `out_deps`. `scan` is the launch-level summary_conflict
  /// verdict: when false the collect/prune walk is skipped entirely and the
  /// use is just appended. Mirrors DependenceTracker::record_use exactly
  /// (collect writers, collect readers iff writing, covering-write prune,
  /// append own use), restricted to one color of one disjoint partition.
  /// `keep_done` must be true while a trace is being captured, exactly as
  /// for DependenceTracker::record_use.
  void record_point_use(uint32_t tree, PartitionId p, std::size_t n_colors,
                        std::size_t crank, uint64_t fields, bool writes, bool scan,
                        const TaskNodePtr& node, std::vector<TaskNodePtr>& out_deps,
                        bool keep_done = false);

  /// Flush `tree`'s group state into the per-point tracker (seed_entry per
  /// color, in color order) and mark the tree contaminated. No-op when the
  /// tree holds no state. Returns true when anything was materialized.
  bool materialize_into(DependenceTracker& tracker, uint32_t tree);

  /// Note a per-point use on `tree`: from now until the next fence the
  /// per-point tracker holds state the group summary would miss, so group
  /// launches on this tree must fall back.
  void mark_per_point(uint32_t tree) { contaminated_.insert(tree); }

  /// Fence: drop all group state and contamination marks (trace boundaries
  /// and wait_all — every recorded task has completed).
  void reset() {
    trees_.clear();
    contaminated_.clear();
  }

  uint64_t dependence_tests() const {
    return dependence_tests_.load(std::memory_order_relaxed);
  }

 private:
  struct ColorState {
    std::vector<TaskUse> writers;  // since the last covering write
    std::vector<TaskUse> readers;
  };
  /// The whole-partition summary of one region tree: who last touched each
  /// color, plus union field masks for the O(1) launch-level test.
  struct PartitionState {
    PartitionId partition;
    std::vector<ColorState> colors;  // by row-major color rank
    uint64_t writer_fields = 0;
    uint64_t reader_fields = 0;
  };

  const RegionForest* forest_;
  std::unordered_map<uint32_t, PartitionState> trees_;
  std::unordered_set<uint32_t> contaminated_;
  std::atomic<uint64_t> dependence_tests_{0};
};

}  // namespace idxl
