#include "runtime/fault.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace idxl {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kException:
      return "exception";
    case FaultKind::kExplicit:
      return "explicit";
    case FaultKind::kInjected:
      return "injected";
    case FaultKind::kTimeout:
      return "timeout";
    case FaultKind::kCancelled:
      return "cancelled";
    case FaultKind::kPoisoned:
      return "poisoned";
  }
  return "?";
}

std::string TaskFault::to_string() const {
  std::string s = "task seq=" + std::to_string(seq);
  if (launch != UINT64_MAX) s += " launch=" + std::to_string(launch);
  s += " point=" + point.to_string();
  s += " kind=" + std::string(fault_kind_name(kind));
  s += " attempts=" + std::to_string(attempts);
  if (root != seq && root != UINT64_MAX) s += " root=" + std::to_string(root);
  if (!message.empty()) s += " msg=\"" + message + "\"";
  return s;
}

FaultReport FaultReport::for_launch(uint64_t launch) const {
  FaultReport r;
  for (const auto& f : failures)
    if (f.launch == launch) r.failures.push_back(f);
  for (const auto& p : poisoned)
    if (p.launch == launch) r.poisoned.push_back(p);
  return r;
}

std::string FaultReport::to_string() const {
  if (ok()) return "FaultReport: ok (no failures)";
  std::string s = "FaultReport: " + std::to_string(failures.size()) + " failure(s), " +
                  std::to_string(poisoned.size()) + " poisoned\n";
  for (const auto& f : failures) s += "  FAILED   " + f.to_string() + "\n";
  for (const auto& p : poisoned) s += "  POISONED " + p.to_string() + "\n";
  return s;
}

void FaultLog::record(TaskFault fault) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fault.kind == FaultKind::kPoisoned)
      poisoned_.push_back(std::move(fault));
    else
      failures_.push_back(std::move(fault));
  }
  epoch_.fetch_add(1, std::memory_order_acq_rel);
}

FaultReport FaultLog::report() const {
  FaultReport r;
  {
    std::lock_guard<std::mutex> lock(mu_);
    r.failures = failures_;
    r.poisoned = poisoned_;
  }
  auto by_seq = [](const TaskFault& a, const TaskFault& b) { return a.seq < b.seq; };
  std::sort(r.failures.begin(), r.failures.end(), by_seq);
  std::sort(r.poisoned.begin(), r.poisoned.end(), by_seq);
  return r;
}

void FaultLog::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  failures_.clear();
  poisoned_.clear();
  // epoch_ deliberately NOT reset: it is a monotone change detector and
  // observers may hold pre-clear values.
}

std::size_t FaultPlan::KeyHash::operator()(const Key& k) const {
  PointHash ph;
  uint64_t h = ph(k.point);
  h ^= k.launch + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  h ^= static_cast<uint64_t>(k.attempt) + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return static_cast<std::size_t>(h);
}

FaultPlan& FaultPlan::fail(uint64_t launch, const Point& point, uint32_t attempt) {
  injections_.insert(Key{launch, attempt, point});
  return *this;
}

FaultPlan FaultPlan::random(uint64_t seed, double rate) {
  IDXL_REQUIRE(rate >= 0.0 && rate <= 1.0, "FaultPlan::random rate must be in [0,1]");
  FaultPlan plan;
  plan.seed_ = seed;
  plan.rate_ = rate;
  return plan;
}

bool FaultPlan::should_fail(uint64_t launch, const Point& point, uint32_t attempt) const {
  if (!injections_.empty() && injections_.count(Key{launch, attempt, point})) return true;
  if (rate_ <= 0.0) return false;
  // Pure function of (seed, launch, point, attempt): seed a fresh generator
  // from the mixed identity and draw once. No shared state, so concurrent
  // queries agree and any failure replays from the plan's seed alone.
  uint64_t mixed = seed_;
  auto mix = [&mixed](uint64_t v) {
    mixed ^= v + 0x9E3779B97F4A7C15ull + (mixed << 6) + (mixed >> 2);
  };
  mix(launch);
  mix(static_cast<uint64_t>(attempt));
  mix(static_cast<uint64_t>(point.dim));
  for (int i = 0; i < point.dim; ++i)
    mix(static_cast<uint64_t>(point.c[static_cast<std::size_t>(i)]));
  Rng rng(mixed);
  return rng.next_double() < rate_;
}

namespace {

// Parses "(c1,c2,...)" starting at spec[pos] (which must be '('); advances
// pos past the closing ')'.
Point parse_point(const std::string& spec, std::size_t& pos) {
  IDXL_REQUIRE(pos < spec.size() && spec[pos] == '(',
               "FaultPlan spec: expected '(' before point coordinates");
  ++pos;
  Point p;
  p.dim = 0;
  while (pos < spec.size() && spec[pos] != ')') {
    IDXL_REQUIRE(p.dim < kMaxDim, "FaultPlan spec: point has too many coordinates");
    std::size_t used = 0;
    const int64_t v = std::stoll(spec.substr(pos), &used);
    IDXL_REQUIRE(used > 0, "FaultPlan spec: bad coordinate");
    p.c[static_cast<std::size_t>(p.dim++)] = v;
    pos += used;
    if (pos < spec.size() && spec[pos] == ',') ++pos;
  }
  IDXL_REQUIRE(pos < spec.size() && spec[pos] == ')',
               "FaultPlan spec: unterminated point, expected ')'");
  ++pos;
  IDXL_REQUIRE(p.dim >= 1, "FaultPlan spec: point needs at least one coordinate");
  return p;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) try {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t end = std::min(spec.find(';', pos), spec.size());
    if (end == pos) {  // empty entry, e.g. trailing ';'
      ++pos;
      continue;
    }
    const std::string entry = spec.substr(pos, end - pos);
    if (entry.rfind("random:", 0) == 0) {
      // random:<seed>:<rate>
      const std::size_t colon = entry.find(':', 7);
      IDXL_REQUIRE(colon != std::string::npos, "FaultPlan spec: random needs :<seed>:<rate>");
      plan.seed_ = std::stoull(entry.substr(7, colon - 7));
      plan.rate_ = std::stod(entry.substr(colon + 1));
      IDXL_REQUIRE(plan.rate_ >= 0.0 && plan.rate_ <= 1.0,
                   "FaultPlan spec: random rate must be in [0,1]");
    } else {
      // L@(c1,c2)[:k]
      std::size_t used = 0;
      const uint64_t launch = std::stoull(entry, &used);
      IDXL_REQUIRE(used < entry.size() && entry[used] == '@',
                   "FaultPlan spec: expected L@(point)[:attempt]");
      std::size_t p = used + 1;
      const Point point = parse_point(entry, p);
      uint32_t attempt = 0;
      if (p < entry.size()) {
        IDXL_REQUIRE(entry[p] == ':', "FaultPlan spec: expected ':' before attempt");
        attempt = static_cast<uint32_t>(std::stoul(entry.substr(p + 1)));
      }
      plan.fail(launch, point, attempt);
    }
    pos = end + 1;
  }
  return plan;
} catch (const RuntimeError&) {
  throw;
} catch (const std::exception&) {
  // std::stoull and friends throw std::invalid_argument/out_of_range on
  // malformed numbers; normalize to the library's error type.
  throw RuntimeError("idxl: malformed FaultPlan spec: " + spec);
}

std::shared_ptr<const FaultPlan> FaultPlan::from_env() {
  const char* spec = std::getenv("IDXL_FAULT_PLAN");
  if (!spec || !*spec) return nullptr;
  return std::make_shared<const FaultPlan>(parse(spec));
}

std::string FaultPlan::to_string() const {
  std::vector<Key> keys(injections_.begin(), injections_.end());
  std::sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
    if (a.launch != b.launch) return a.launch < b.launch;
    if (a.point != b.point) return a.point < b.point;
    return a.attempt < b.attempt;
  });
  std::string s;
  for (const auto& k : keys) {
    if (!s.empty()) s += ";";
    s += std::to_string(k.launch) + "@" + k.point.to_string();
    if (k.attempt != 0) s += ":" + std::to_string(k.attempt);
  }
  if (rate_ > 0.0) {
    if (!s.empty()) s += ";";
    s += "random:" + std::to_string(seed_) + ":" + std::to_string(rate_);
  }
  return s;
}

namespace {
thread_local FaultFrame g_fault_frame;
}  // namespace

FaultFrameScope::FaultFrameScope(FaultFrame frame) : saved_(g_fault_frame) {
  g_fault_frame = frame;
}

FaultFrameScope::~FaultFrameScope() { g_fault_frame = saved_; }

const FaultFrame& current_fault_frame() { return g_fault_frame; }

bool current_task_cancelled() {
  const FaultFrame& f = g_fault_frame;
  if (f.cancel && f.cancel->load(std::memory_order_acquire)) return true;
  if (f.global_cancel && f.global_cancel->load(std::memory_order_acquire)) return true;
  return false;
}

}  // namespace idxl
