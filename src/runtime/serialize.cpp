#include "runtime/serialize.hpp"

#include <cstring>

namespace idxl {

void Serializer::put_u32(uint32_t v) {
  for (int i = 0; i < 4; ++i) put_u8(static_cast<uint8_t>(v >> (8 * i)));
}

void Serializer::put_i64(int64_t v) {
  const auto u = static_cast<uint64_t>(v);
  for (int i = 0; i < 8; ++i) put_u8(static_cast<uint8_t>(u >> (8 * i)));
}

void Serializer::put_f64(double v) {
  uint64_t u;
  static_assert(sizeof(u) == sizeof(v));
  std::memcpy(&u, &v, sizeof(u));
  put_u64(u);
}

void Serializer::put_point(const Point& p) {
  put_u8(static_cast<uint8_t>(p.dim));
  for (int d = 0; d < p.dim; ++d) put_i64(p[d]);
}

void Serializer::put_blob(const std::vector<std::byte>& blob) {
  put_u32(static_cast<uint32_t>(blob.size()));
  bytes_.insert(bytes_.end(), blob.begin(), blob.end());
}

void Serializer::put_string(const std::string& s) {
  put_u32(static_cast<uint32_t>(s.size()));
  for (char c : s) put_u8(static_cast<uint8_t>(c));
}

void Serializer::put_header() {
  put_u32(kWireMagic);
  put_u8(kWireVersion);
}

uint8_t Deserializer::get_u8() {
  IDXL_REQUIRE(cursor_ < bytes_->size(), "truncated launch descriptor");
  return static_cast<uint8_t>((*bytes_)[cursor_++]);
}

uint32_t Deserializer::get_u32() {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(get_u8()) << (8 * i);
  return v;
}

int64_t Deserializer::get_i64() {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(get_u8()) << (8 * i);
  return static_cast<int64_t>(v);
}

double Deserializer::get_f64() {
  const uint64_t u = get_u64();
  double v;
  std::memcpy(&v, &u, sizeof(v));
  return v;
}

Point Deserializer::get_point() {
  Point p;
  p.dim = get_u8();
  IDXL_REQUIRE(p.dim >= 1 && p.dim <= kMaxDim, "corrupt point in descriptor");
  for (int d = 0; d < p.dim; ++d) p[d] = get_i64();
  return p;
}

std::vector<std::byte> Deserializer::get_blob() {
  const uint32_t n = get_u32();
  IDXL_REQUIRE(cursor_ + n <= bytes_->size(), "truncated launch descriptor");
  std::vector<std::byte> blob(bytes_->begin() + static_cast<std::ptrdiff_t>(cursor_),
                              bytes_->begin() + static_cast<std::ptrdiff_t>(cursor_ + n));
  cursor_ += n;
  return blob;
}

std::string Deserializer::get_string() {
  const uint32_t n = get_u32();
  IDXL_REQUIRE(cursor_ + n <= bytes_->size(), "truncated launch descriptor");
  std::string s(reinterpret_cast<const char*>(bytes_->data()) + cursor_, n);
  cursor_ += n;
  return s;
}

void Deserializer::check_header(const char* what) {
  IDXL_REQUIRE(get_u32() == kWireMagic,
               std::string(what) + ": bad magic (not an idxl descriptor)");
  const uint8_t version = get_u8();
  IDXL_REQUIRE(version == kWireVersion,
               std::string(what) + ": wire version " + std::to_string(version) +
                   " != expected " + std::to_string(kWireVersion));
}

void serialize_expr(Serializer& s, const Expr& e) {
  s.put_u8(static_cast<uint8_t>(e.kind));
  switch (e.kind) {
    case ExprKind::kConst:
    case ExprKind::kCoord:
      s.put_i64(e.value);
      return;
    case ExprKind::kNeg:
      serialize_expr(s, *e.lhs);
      return;
    default:
      serialize_expr(s, *e.lhs);
      serialize_expr(s, *e.rhs);
      return;
  }
}

ExprPtr deserialize_expr(Deserializer& d) {
  const auto kind = static_cast<ExprKind>(d.get_u8());
  switch (kind) {
    case ExprKind::kConst: return make_const(d.get_i64());
    case ExprKind::kCoord: return make_coord(static_cast<int>(d.get_i64()));
    case ExprKind::kNeg: return make_neg(deserialize_expr(d));
    case ExprKind::kAdd: {
      auto l = deserialize_expr(d);
      return make_add(std::move(l), deserialize_expr(d));
    }
    case ExprKind::kSub: {
      auto l = deserialize_expr(d);
      return make_sub(std::move(l), deserialize_expr(d));
    }
    case ExprKind::kMul: {
      auto l = deserialize_expr(d);
      return make_mul(std::move(l), deserialize_expr(d));
    }
    case ExprKind::kDiv: {
      auto l = deserialize_expr(d);
      return make_div(std::move(l), deserialize_expr(d));
    }
    case ExprKind::kMod: {
      auto l = deserialize_expr(d);
      return make_mod(std::move(l), deserialize_expr(d));
    }
  }
  throw RuntimeError("idxl: corrupt expression in launch descriptor");
}

void serialize_domain(Serializer& s, const Domain& domain) {
  s.put_u8(domain.dense() ? 1 : 0);
  if (domain.dense()) {
    // Dense: bounds only — the O(1) encoding, independent of volume.
    s.put_point(domain.bounds().lo);
    s.put_point(domain.bounds().hi);
    return;
  }
  s.put_i64(domain.volume());
  domain.for_each([&s](const Point& p) { s.put_point(p); });
}

Domain deserialize_domain(Deserializer& d) {
  if (d.get_u8() != 0) {
    const Point lo = d.get_point();
    const Point hi = d.get_point();
    return Domain(Rect(lo, hi));
  }
  const int64_t n = d.get_i64();
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int64_t i = 0; i < n; ++i) pts.push_back(d.get_point());
  return Domain::from_points(std::move(pts));
}

std::vector<std::byte> serialize_launcher(const IndexLauncher& launcher) {
  Serializer s;
  s.put_header();
  s.put_u32(launcher.task);
  serialize_domain(s, launcher.domain);
  s.put_u8(launcher.assume_verified ? 1 : 0);
  s.put_u8(static_cast<uint8_t>(launcher.result_redop));
  // Retry policy is part of the descriptor: the sharded runtime's
  // replication hash must catch shards disagreeing on failure semantics.
  s.put_u32(launcher.max_retries);
  s.put_u32(launcher.retry_backoff_ms);
  s.put_u32(launcher.timeout_ms);
  s.put_u32(static_cast<uint32_t>(launcher.args.size()));
  for (const ProjectedArg& arg : launcher.args) {
    IDXL_REQUIRE(arg.functor.is_symbolic(),
                 "opaque projection functors are not serializable");
    s.put_u32(arg.parent.id);
    s.put_u32(arg.partition.id);
    s.put_u8(static_cast<uint8_t>(arg.privilege));
    s.put_u8(static_cast<uint8_t>(arg.redop));
    s.put_u32(static_cast<uint32_t>(arg.functor.exprs().size()));
    for (const ExprPtr& e : arg.functor.exprs()) serialize_expr(s, *e);
    s.put_u32(static_cast<uint32_t>(arg.fields.size()));
    for (FieldId f : arg.fields) s.put_u32(f);
  }
  s.put_blob(launcher.scalar_args.raw());
  // v2: the analysis payload (interference-certificate bundle) rides the
  // descriptor so workers validate pair proofs instead of re-deriving them.
  s.put_blob(launcher.analysis_bundle);
  // v4: trace context — origin rank + the launch id the driver assigned.
  s.put_u32(launcher.trace_ctx.origin);
  s.put_u64(launcher.trace_ctx.launch);
  s.put_u64(launcher.trace_ctx.span);
  return s.take();
}

IndexLauncher deserialize_launcher(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  d.check_header("index-launch descriptor");
  IndexLauncher launcher;
  launcher.task = d.get_u32();
  launcher.domain = deserialize_domain(d);
  launcher.assume_verified = d.get_u8() != 0;
  launcher.result_redop = static_cast<ReductionOp>(d.get_u8());
  launcher.max_retries = d.get_u32();
  launcher.retry_backoff_ms = d.get_u32();
  launcher.timeout_ms = d.get_u32();
  const uint32_t nargs = d.get_u32();
  for (uint32_t a = 0; a < nargs; ++a) {
    ProjectedArg arg;
    arg.parent = RegionId{d.get_u32()};
    arg.partition = PartitionId{d.get_u32()};
    arg.privilege = static_cast<Privilege>(d.get_u8());
    arg.redop = static_cast<ReductionOp>(d.get_u8());
    const uint32_t nexprs = d.get_u32();
    std::vector<ExprPtr> exprs;
    exprs.reserve(nexprs);
    for (uint32_t e = 0; e < nexprs; ++e) exprs.push_back(deserialize_expr(d));
    arg.functor = ProjectionFunctor::symbolic(std::move(exprs));
    const uint32_t nfields = d.get_u32();
    for (uint32_t f = 0; f < nfields; ++f) arg.fields.push_back(d.get_u32());
    launcher.args.push_back(std::move(arg));
  }
  launcher.scalar_args = ArgBuffer::from_bytes(d.get_blob());
  launcher.analysis_bundle = d.get_blob();
  launcher.trace_ctx.origin = d.get_u32();
  launcher.trace_ctx.launch = d.get_u64();
  launcher.trace_ctx.span = d.get_u64();
  IDXL_REQUIRE(d.done(), "trailing bytes in launch descriptor");
  return launcher;
}

std::vector<std::byte> serialize_task_launcher(const TaskLauncher& launcher) {
  Serializer s;
  s.put_header();
  s.put_u32(launcher.task);
  s.put_point(launcher.point);
  serialize_domain(s, launcher.launch_domain);
  s.put_u8(static_cast<uint8_t>(launcher.result_redop));
  s.put_u32(launcher.max_retries);
  s.put_u32(launcher.retry_backoff_ms);
  s.put_u32(launcher.timeout_ms);
  s.put_u32(static_cast<uint32_t>(launcher.args.size()));
  for (const RegionArg& arg : launcher.args) {
    s.put_u32(arg.region.id);
    s.put_u8(static_cast<uint8_t>(arg.privilege));
    s.put_u8(static_cast<uint8_t>(arg.redop));
    s.put_u32(static_cast<uint32_t>(arg.fields.size()));
    for (FieldId f : arg.fields) s.put_u32(f);
  }
  s.put_blob(launcher.scalar_args.raw());
  // v4: trace context — origin rank + the launch id the driver assigned.
  s.put_u32(launcher.trace_ctx.origin);
  s.put_u64(launcher.trace_ctx.launch);
  s.put_u64(launcher.trace_ctx.span);
  return s.take();
}

TaskLauncher deserialize_task_launcher(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  d.check_header("task-launch descriptor");
  TaskLauncher launcher;
  launcher.task = d.get_u32();
  launcher.point = d.get_point();
  launcher.launch_domain = deserialize_domain(d);
  launcher.result_redop = static_cast<ReductionOp>(d.get_u8());
  launcher.max_retries = d.get_u32();
  launcher.retry_backoff_ms = d.get_u32();
  launcher.timeout_ms = d.get_u32();
  const uint32_t nargs = d.get_u32();
  for (uint32_t a = 0; a < nargs; ++a) {
    RegionArg arg;
    arg.region = RegionId{d.get_u32()};
    arg.privilege = static_cast<Privilege>(d.get_u8());
    arg.redop = static_cast<ReductionOp>(d.get_u8());
    const uint32_t nfields = d.get_u32();
    for (uint32_t f = 0; f < nfields; ++f) arg.fields.push_back(d.get_u32());
    launcher.args.push_back(std::move(arg));
  }
  launcher.scalar_args = ArgBuffer::from_bytes(d.get_blob());
  launcher.trace_ctx.origin = d.get_u32();
  launcher.trace_ctx.launch = d.get_u64();
  launcher.trace_ctx.span = d.get_u64();
  IDXL_REQUIRE(d.done(), "trailing bytes in launch descriptor");
  return launcher;
}

void serialize_fault(Serializer& s, const TaskFault& fault) {
  s.put_u64(fault.seq);
  s.put_u64(fault.launch);
  s.put_point(fault.point);
  s.put_u32(fault.attempts);
  s.put_u8(static_cast<uint8_t>(fault.kind));
  s.put_u64(fault.root);
  s.put_string(fault.message);
}

TaskFault deserialize_fault(Deserializer& d) {
  TaskFault fault;
  fault.seq = d.get_u64();
  fault.launch = d.get_u64();
  fault.point = d.get_point();
  fault.attempts = d.get_u32();
  fault.kind = static_cast<FaultKind>(d.get_u8());
  fault.root = d.get_u64();
  fault.message = d.get_string();
  return fault;
}

std::vector<std::byte> serialize_fault_report(const FaultReport& report) {
  Serializer s;
  s.put_header();
  s.put_u32(static_cast<uint32_t>(report.failures.size()));
  for (const TaskFault& f : report.failures) serialize_fault(s, f);
  s.put_u32(static_cast<uint32_t>(report.poisoned.size()));
  for (const TaskFault& f : report.poisoned) serialize_fault(s, f);
  return s.take();
}

FaultReport deserialize_fault_report(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  d.check_header("fault report");
  FaultReport report;
  const uint32_t nfail = d.get_u32();
  for (uint32_t i = 0; i < nfail; ++i) report.failures.push_back(deserialize_fault(d));
  const uint32_t npoison = d.get_u32();
  for (uint32_t i = 0; i < npoison; ++i) report.poisoned.push_back(deserialize_fault(d));
  IDXL_REQUIRE(d.done(), "trailing bytes in fault report");
  return report;
}

}  // namespace idxl
