#include "runtime/group_dependence.hpp"

namespace idxl {

void GroupDependenceTracker::record_point_use(uint32_t tree, PartitionId p,
                                              std::size_t n_colors, std::size_t crank,
                                              uint64_t fields, bool writes, bool scan,
                                              const TaskNodePtr& node,
                                              std::vector<TaskNodePtr>& out_deps,
                                              bool keep_done) {
  auto [it, inserted] = trees_.try_emplace(tree);
  PartitionState& ps = it->second;
  if (inserted) {
    ps.partition = p;
    ps.colors.resize(n_colors);
  }
  IDXL_ASSERT(ps.partition == p && ps.colors.size() == n_colors);
  IDXL_ASSERT(crank < n_colors);
  ColorState& cs = ps.colors[crank];

  if (scan) {
    // Same-color uses always interfere (same subregion domain); cross-color
    // uses of one disjoint partition never do — exactly the cases the
    // per-point tracker resolves with its whole-partition guard, minus the
    // hash/BVH machinery.
    collect_conflicting_uses(cs.writers, fields, out_deps, dependence_tests_,
                             keep_done);
    if (writes)
      collect_conflicting_uses(cs.readers, fields, out_deps, dependence_tests_,
                               keep_done);
  }
  if (writes) {
    // Covering-write pruning, same-color only (cross-color entries are
    // never covered by a disjoint sibling).
    auto prune = [fields](std::vector<TaskUse>& uses) {
      std::erase_if(uses,
                    [fields](const TaskUse& u) { return (u.fields & ~fields) == 0; });
    };
    prune(cs.writers);
    prune(cs.readers);
  }
  (writes ? cs.writers : cs.readers).push_back(TaskUse{node, fields});
  (writes ? ps.writer_fields : ps.reader_fields) |= fields;
}

bool GroupDependenceTracker::materialize_into(DependenceTracker& tracker,
                                              uint32_t tree) {
  auto it = trees_.find(tree);
  if (it == trees_.end()) return false;
  PartitionState& ps = it->second;
  const PartitionId p = ps.partition;
  const Rect& colors = forest_->color_space(p);
  for (std::size_t crank = 0; crank < ps.colors.size(); ++crank) {
    ColorState& cs = ps.colors[crank];
    if (cs.writers.empty() && cs.readers.empty()) continue;
    const IndexSpaceId ispace =
        forest_->subspace(p, colors.delinearize(static_cast<int64_t>(crank)));
    tracker.seed_entry(tree, ispace, p, /*through_disjoint=*/true,
                       std::move(cs.writers), std::move(cs.readers));
  }
  trees_.erase(it);
  contaminated_.insert(tree);
  return true;
}

}  // namespace idxl
