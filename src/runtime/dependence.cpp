#include "runtime/dependence.hpp"

namespace idxl {

uint64_t field_mask(const std::vector<FieldId>& fields) {
  uint64_t mask = 0;
  for (FieldId f : fields) {
    IDXL_REQUIRE(f < 64, "at most 64 fields per field space are supported");
    mask |= uint64_t{1} << f;
  }
  return mask;
}

void collect_conflicting_uses(std::vector<TaskUse>& uses, uint64_t fields,
                              std::vector<TaskNodePtr>& out_deps,
                              std::atomic<uint64_t>& tests, bool keep_done) {
  std::size_t keep = 0;
  uint64_t performed = 0;
  for (std::size_t i = 0; i < uses.size(); ++i) {
    TaskUse& u = uses[i];
    if (u.node->done.load(std::memory_order_acquire)) {
      // Clean completions compact out: the dependence is trivially
      // satisfied. A *faulted* completion must stay — its data is garbage,
      // so every later conflicting use still inherits its poison (the edge
      // is reported; schedule()'s late-edge path copies the root over).
      // Under `keep_done` (trace capture) clean completions also stay and
      // report their edge: "trivially satisfied" holds for this execution
      // only, while the captured trace must order every replay.
      if (u.node->fault_kind() == FaultKind::kNone && !keep_done) continue;
      if (u.fields & fields) out_deps.push_back(u.node);
      if (keep != i) uses[keep] = std::move(u);
      ++keep;
      continue;
    }
    ++performed;
    if (u.fields & fields) out_deps.push_back(u.node);
    if (keep != i) uses[keep] = std::move(u);
    ++keep;
  }
  uses.resize(keep);
  if (performed != 0) tests.fetch_add(performed, std::memory_order_relaxed);
}

bool DependenceTracker::overlaps(IndexSpaceId a, IndexSpaceId b) {
  if (a == b) return true;
  const uint64_t key = a.id <= b.id ? (uint64_t{a.id} << 32 | b.id)
                                    : (uint64_t{b.id} << 32 | a.id);
  auto it = overlap_cache_.find(key);
  if (it != overlap_cache_.end()) return it->second;
  const bool result = !forest_->domain(a).disjoint_from(forest_->domain(b));
  overlap_cache_.emplace(key, result);
  return result;
}

bool DependenceTracker::contains(IndexSpaceId outer, IndexSpaceId inner) {
  if (outer == inner) return true;
  const uint64_t key = uint64_t{outer.id} << 32 | inner.id;
  auto it = contains_cache_.find(key);
  if (it != contains_cache_.end()) return it->second;
  const bool result = forest_->domain(outer).contains_domain(forest_->domain(inner));
  contains_cache_.emplace(key, result);
  return result;
}

void DependenceTracker::candidates(TreeState& ts, const Rect& bounds,
                                   std::vector<Entry*>& out) {
  // Rebuild the BVH once enough unindexed entries accumulate; the linear
  // fresh-list scan amortizes the rebuilds away.
  if (ts.fresh.size() > 16 && ts.fresh.size() > ts.built) {
    std::vector<std::pair<Rect, uint32_t>> items;
    items.reserve(ts.entries.size());
    for (const auto& [id, entry] : ts.entries)
      items.emplace_back(forest_->domain(entry.ispace).bounds(), id);
    ts.bvh.build(std::move(items));
    ts.fresh.clear();
    ts.built = ts.entries.size();
  }

  ts.bvh.query(bounds, [&](uint32_t id) { out.push_back(&ts.entries.at(id)); });
  for (uint32_t id : ts.fresh) {
    Entry& entry = ts.entries.at(id);
    if (forest_->domain(entry.ispace).bounds().overlaps(bounds)) out.push_back(&entry);
  }
}

void DependenceTracker::record_use(uint32_t tree, IndexSpaceId ispace, uint64_t fields,
                                   bool writes, PartitionId through,
                                   bool through_disjoint, const TaskNodePtr& node,
                                   std::vector<TaskNodePtr>& out_deps, bool keep_done,
                                   bool scan) {
  TreeState& ts = trees_[tree];

  // Candidate entries by bounding-box overlap (BVH + fresh list); exact
  // domain tests follow below, so bounding boxes of sparse domains are a
  // sound over-approximation. Certificate-backed skips (`scan` = false)
  // bypass the probe and the prune but still record the use below.
  std::vector<Entry*> nearby;
  if (scan) candidates(ts, forest_->domain(ispace).bounds(), nearby);

  for (Entry* entry : nearby) {
    // Whole-partition disjointness: distinct colors of one disjoint
    // partition never overlap — no domain test needed.
    if (through_disjoint && entry->through == through && !(entry->ispace == ispace))
      continue;
    if (!overlaps(ispace, entry->ispace)) continue;
    // Readers always conflict with prior writers; writers additionally
    // conflict with prior readers (anti-dependence).
    collect_conflicting_uses(entry->writers, fields, out_deps, dependence_tests_,
                             keep_done);
    if (writes)
      collect_conflicting_uses(entry->readers, fields, out_deps, dependence_tests_,
                               keep_done);
  }

  if (writes) {
    // A write supersedes every use it fully covers (same or subset fields):
    // later tasks ordering against this write are transitively ordered
    // against the superseded uses. Containment implies bounds overlap, so
    // the candidate set covers every prunable entry.
    for (Entry* entry : nearby) {
      if (through_disjoint && entry->through == through && !(entry->ispace == ispace))
        continue;
      if (!contains(ispace, entry->ispace)) continue;
      auto prune = [fields](std::vector<TaskUse>& uses) {
        std::erase_if(uses,
                      [fields](const TaskUse& u) { return (u.fields & ~fields) == 0; });
      };
      prune(entry->writers);
      prune(entry->readers);
    }
  }

  auto [it, inserted] = ts.entries.try_emplace(ispace.id);
  Entry& mine = it->second;
  if (inserted) ts.fresh.push_back(ispace.id);
  mine.ispace = ispace;
  mine.through = through;
  mine.through_disjoint = through_disjoint;
  (writes ? mine.writers : mine.readers).push_back(TaskUse{node, fields});
}

void DependenceTracker::seed_entry(uint32_t tree, IndexSpaceId ispace,
                                   PartitionId through, bool through_disjoint,
                                   std::vector<TaskUse>&& writers,
                                   std::vector<TaskUse>&& readers) {
  TreeState& ts = trees_[tree];
  auto [it, inserted] = ts.entries.try_emplace(ispace.id);
  Entry& mine = it->second;
  if (inserted) ts.fresh.push_back(ispace.id);
  mine.ispace = ispace;
  mine.through = through;
  mine.through_disjoint = through_disjoint;
  if (mine.writers.empty()) {
    mine.writers = std::move(writers);
  } else {
    mine.writers.insert(mine.writers.end(), std::make_move_iterator(writers.begin()),
                        std::make_move_iterator(writers.end()));
  }
  if (mine.readers.empty()) {
    mine.readers = std::move(readers);
  } else {
    mine.readers.insert(mine.readers.end(), std::make_move_iterator(readers.begin()),
                        std::make_move_iterator(readers.end()));
  }
}

void DependenceTracker::reset() { trees_.clear(); }

}  // namespace idxl
