#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "region/point.hpp"

namespace idxl {

/// Why a task reached a terminal non-success state. The first five are root
/// causes; kPoisoned marks downstream casualties of some other task's
/// failure (their `root` names the culprit).
enum class FaultKind : uint8_t {
  kNone = 0,
  kException,  ///< the task body threw (anything but TaskCancelled)
  kExplicit,   ///< the body called TaskContext::fail()
  kInjected,   ///< a FaultPlan injection fired for this (launch, point, attempt)
  kTimeout,    ///< the per-launch timeout cancelled the task mid-run
  kCancelled,  ///< cancelled cooperatively (watchdog action or cancel_all())
  kPoisoned,   ///< an upstream dependence failed; the body never ran
};

const char* fault_kind_name(FaultKind k);

/// Exception a task body throws (via TaskContext::fail) to fail explicitly.
/// Explicit failures are retryable under the launch's retry policy.
class TaskFailure : public std::runtime_error {
 public:
  explicit TaskFailure(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown by TaskContext::check_cancelled() once the task's cancel flag is
/// set (timeout fired, watchdog cancelled the run, or cancel_all()). Not
/// retryable: cancellation is a terminal verdict on the attempt.
class TaskCancelled : public std::runtime_error {
 public:
  TaskCancelled() : std::runtime_error("idxl: task cancelled") {}
};

/// One task's terminal fault record: identity (seq/launch/point), how many
/// attempts ran, why it ended, and the root cause (its own seq for root
/// failures; the failing ancestor's seq for poisoned tasks).
struct TaskFault {
  uint64_t seq = 0;
  uint64_t launch = UINT64_MAX;
  Point point;
  uint32_t attempts = 0;  ///< body executions (0 for poisoned: it never ran)
  FaultKind kind = FaultKind::kNone;
  uint64_t root = UINT64_MAX;  ///< seq of the root-cause failure
  std::string message;

  bool operator==(const TaskFault&) const = default;
  std::string to_string() const;
};

/// The structured outcome of a run with failures: root causes plus the
/// poisoned downstream closure, both sorted by seq so that a deterministic
/// execution yields a bit-for-bit identical report.
struct FaultReport {
  std::vector<TaskFault> failures;  ///< root causes (failed/timed out/cancelled)
  std::vector<TaskFault> poisoned;  ///< downstream tasks that never ran

  bool ok() const { return failures.empty() && poisoned.empty(); }
  /// Restrict to one launch (failures and poisoned tasks it contains).
  FaultReport for_launch(uint64_t launch) const;
  bool operator==(const FaultReport&) const = default;
  std::string to_string() const;
};

/// Thread-safe fault accumulator shared by the schedulers. `epoch()` is a
/// cheap monotone change detector (trace capture uses it to invalidate
/// traces containing a failed step).
class FaultLog {
 public:
  void record(TaskFault fault);
  FaultReport report() const;  ///< sorted snapshot
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<TaskFault> failures_;
  std::vector<TaskFault> poisoned_;
  std::atomic<uint64_t> epoch_{0};
};

/// Deterministic fault-injection plan: "fail point p of launch L on attempt
/// k". Two forms, combinable:
///
///  * explicit injections, added with fail() or parsed from a spec string
///    `"L@(c1,c2):k"` (`:k` optional, default attempt 0), `;`-separated;
///  * a seeded probabilistic mode (`random(seed, rate)`, spec form
///    `"random:<seed>:<rate>"`) where should_fail() is a pure hash of
///    (seed, launch, point, attempt) — reproducible without pre-computing a
///    list, so soak tests can replay any failure from its seed alone.
///
/// should_fail() is a pure function of its arguments; given a deterministic
/// issue order, the set of injected failures — and hence the poisoned
/// closure and the whole FaultReport — is bit-for-bit reproducible.
/// The IDXL_FAULT_PLAN environment variable installs a plan (same spec
/// grammar) into any Runtime without a rebuild.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Add one explicit injection; returns *this for chaining.
  FaultPlan& fail(uint64_t launch, const Point& point, uint32_t attempt = 0);

  /// Seeded probabilistic plan: each (launch, point, attempt) fails with
  /// probability `rate`, decided by a pure hash — no shared state.
  static FaultPlan random(uint64_t seed, double rate);

  /// Parse a spec string (grammar above). Throws RuntimeError on malformed
  /// input.
  static FaultPlan parse(const std::string& spec);

  /// The IDXL_FAULT_PLAN environment plan, or nullptr when unset.
  static std::shared_ptr<const FaultPlan> from_env();

  bool should_fail(uint64_t launch, const Point& point, uint32_t attempt) const;
  bool empty() const { return injections_.empty() && rate_ <= 0.0; }
  std::string to_string() const;

 private:
  struct Key {
    uint64_t launch = 0;
    uint32_t attempt = 0;
    Point point;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };

  std::unordered_set<Key, KeyHash> injections_;
  uint64_t seed_ = 0;
  double rate_ = 0.0;
};

/// Per-attempt execution context the executor publishes (thread-locally)
/// around a task body, so TaskContext::cancelled()/attempt() work without
/// threading extra state through every task closure.
struct FaultFrame {
  const std::atomic<bool>* cancel = nullptr;         ///< this task's flag
  const std::atomic<bool>* global_cancel = nullptr;  ///< runtime-wide flag
  uint32_t attempt = 0;
};

/// RAII publisher for the executing worker's FaultFrame.
class FaultFrameScope {
 public:
  explicit FaultFrameScope(FaultFrame frame);
  ~FaultFrameScope();
  FaultFrameScope(const FaultFrameScope&) = delete;
  FaultFrameScope& operator=(const FaultFrameScope&) = delete;

 private:
  FaultFrame saved_;
};

/// The executing task's frame (empty frame outside any task body).
const FaultFrame& current_fault_frame();
/// True once the executing task's cancel flag (or the runtime-wide one) is
/// set. Always false outside a task body.
bool current_task_cancelled();

}  // namespace idxl
