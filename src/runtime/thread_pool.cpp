#include "runtime/thread_pool.hpp"

#include "obs/profiler.hpp"
#include "support/error.hpp"

namespace idxl {

ThreadPool::ThreadPool(unsigned workers, int worker_id_base) {
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    threads_.emplace_back(
        [this, id = worker_id_base + static_cast<int>(i)] { worker_loop(id); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> fn) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    IDXL_ASSERT_MSG(!shutdown_, "submit after shutdown");
    queue_.push_back(std::move(fn));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::submit_batch(std::vector<std::function<void()>> fns) {
  if (fns.empty()) return;
  const std::size_t n = fns.size();
  {
    std::unique_lock<std::mutex> lock(mu_);
    IDXL_ASSERT_MSG(!shutdown_, "submit after shutdown");
    for (auto& fn : fns) queue_.push_back(std::move(fn));
    in_flight_ += n;
  }
  if (n >= threads_.size()) {
    work_cv_.notify_all();
  } else {
    for (std::size_t i = 0; i < n; ++i) work_cv_.notify_one();
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop(int worker_id) {
  prof_set_current_worker(worker_id);
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      fn = std::move(queue_.front());
      queue_.pop_front();
    }
    fn();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace idxl
