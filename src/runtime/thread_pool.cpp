#include "runtime/thread_pool.hpp"

#include <iterator>

#include "obs/profiler.hpp"
#include "support/error.hpp"

namespace idxl {

ThreadPool::ThreadPool(unsigned workers, int worker_id_base) {
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    threads_.emplace_back(
        [this, id = worker_id_base + static_cast<int>(i)] { worker_loop(id); });
}

ThreadPool::~ThreadPool() {
  // Phase 1: retire the timer thread BEFORE workers see shutdown_. A timer
  // callback firing right now (outside the lock) may legitimately submit()
  // real work back to the pool — the retry-backoff path does exactly that —
  // and joining here waits the callback out while submissions are still
  // accepted. Setting shutdown_ first instead would race that submit()
  // against the "submit after shutdown" assert and abort on restart-heavy
  // lifecycles (repeated ServiceRuntime start/stop).
  {
    std::unique_lock<std::mutex> lock(mu_);
    timers_stop_ = true;
  }
  timer_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
  // Phase 2: now no thread can enqueue concurrently with shutdown; workers
  // drain whatever the timer callbacks left behind, then exit.
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> fn) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    IDXL_ASSERT_MSG(!shutdown_, "submit after shutdown");
    queue_.push_back(std::move(fn));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::submit_batch(std::vector<std::function<void()>> fns) {
  if (fns.empty()) return;
  const std::size_t n = fns.size();
  {
    std::unique_lock<std::mutex> lock(mu_);
    IDXL_ASSERT_MSG(!shutdown_, "submit after shutdown");
    for (auto& fn : fns) queue_.push_back(std::move(fn));
    in_flight_ += n;
  }
  if (n >= threads_.size()) {
    work_cv_.notify_all();
  } else {
    for (std::size_t i = 0; i < n; ++i) work_cv_.notify_one();
  }
}

uint64_t ThreadPool::submit_after(std::function<void()> fn, uint64_t delay_ms) {
  uint64_t id;
  {
    std::unique_lock<std::mutex> lock(mu_);
    IDXL_ASSERT_MSG(!shutdown_ && !timers_stop_, "submit_after after shutdown");
    id = ++next_timer_id_;
    timers_.push_back(Timer{
        id, std::chrono::steady_clock::now() + std::chrono::milliseconds(delay_ms),
        std::move(fn)});
    ++in_flight_;
    // Lazily start the timer thread: pools that never use timers (the common
    // case) pay nothing.
    if (!timer_thread_.joinable()) timer_thread_ = std::thread([this] { timer_loop(); });
  }
  timer_cv_.notify_one();
  return id;
}

bool ThreadPool::cancel_timer(uint64_t id) {
  std::unique_lock<std::mutex> lock(mu_);
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->id != id) continue;
    timers_.erase(it);
    --in_flight_;
    if (in_flight_ == 0) idle_cv_.notify_all();
    return true;
  }
  return false;
}

void ThreadPool::timer_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (shutdown_ || timers_stop_) {
      // Unexpired timers are dropped, never fired: the process is going
      // away and their in_flight_ reservation with it.
      in_flight_ -= timers_.size();
      timers_.clear();
      if (in_flight_ == 0) idle_cv_.notify_all();
      return;
    }
    if (timers_.empty()) {
      timer_cv_.wait(lock);
      continue;
    }
    auto due = timers_.begin();
    for (auto it = std::next(due); it != timers_.end(); ++it)
      if (it->deadline < due->deadline) due = it;
    const auto now = std::chrono::steady_clock::now();
    if (due->deadline > now) {
      timer_cv_.wait_until(lock, due->deadline);
      continue;
    }
    auto fn = std::move(due->fn);
    timers_.erase(due);
    // Fire OUTSIDE the lock, on this thread: the callback may submit() work
    // back to the pool, and it must run even when every worker is busy.
    lock.unlock();
    fn();
    fn = nullptr;  // destroy captured state before re-locking
    lock.lock();
    --in_flight_;
    if (in_flight_ == 0) idle_cv_.notify_all();
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  IDXL_ASSERT_MSG(!paused_, "wait_idle on a paused pool would never return");
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::pause() {
  std::unique_lock<std::mutex> lock(mu_);
  paused_ = true;
  // Tasks already picked up run to completion; once executing_ hits zero
  // the pool is deterministically quiescent (the queue just holds).
  idle_cv_.wait(lock, [this] { return executing_ == 0; });
}

void ThreadPool::resume() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

bool ThreadPool::paused() const {
  std::unique_lock<std::mutex> lock(mu_);
  return paused_;
}

std::size_t ThreadPool::queue_depth() const {
  std::unique_lock<std::mutex> lock(mu_);
  return queue_.size();
}

std::size_t ThreadPool::executing() const {
  std::unique_lock<std::mutex> lock(mu_);
  return executing_;
}

void ThreadPool::worker_loop(int worker_id) {
  prof_set_current_worker(worker_id);
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Shutdown overrides pause: the destructor drains the queue.
      work_cv_.wait(lock, [this] {
        return shutdown_ || (!paused_ && !queue_.empty());
      });
      if (queue_.empty()) return;  // shutdown with a drained queue
      fn = std::move(queue_.front());
      queue_.pop_front();
      ++executing_;
    }
    fn();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --executing_;
      --in_flight_;
      // pause() waits on executing_ == 0; wait_idle() on in_flight_ == 0.
      if (in_flight_ == 0 || executing_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace idxl
