#pragma once

#include <atomic>
#include <unordered_map>
#include <unordered_set>

#include "region/bvh.hpp"
#include "region/region_forest.hpp"
#include "runtime/task_graph.hpp"

namespace idxl {

/// Field sets are represented as 64-bit masks; a field space may declare at
/// most 64 fields (ample for the paper's workloads).
uint64_t field_mask(const std::vector<FieldId>& fields);

/// One recorded use of a piece of data by a live task. Shared between the
/// per-point DependenceTracker and the group-level GroupDependenceTracker,
/// so group state can be materialized into per-point state verbatim.
struct TaskUse {
  TaskNodePtr node;
  uint64_t fields = 0;
};

/// Append the live uses of `uses` whose fields conflict with `fields` to
/// `out_deps`; compact completed nodes out of `uses` along the way. Every
/// live use costs one conflict test, counted into `tests` (relaxed — the
/// counter is read live by Runtime::stats()).
///
/// `keep_done` (trace capture): cleanly completed uses still emit their
/// edge and stay in `uses` instead of compacting away. At capture time a
/// satisfied dependence is only *dynamically* satisfied — on replay the
/// predecessor runs again concurrently, so the edge must be recorded or
/// the replayed tasks race. Kept-done uses don't count into `tests`.
void collect_conflicting_uses(std::vector<TaskUse>& uses, uint64_t fields,
                              std::vector<TaskNodePtr>& out_deps,
                              std::atomic<uint64_t>& tests, bool keep_done = false);

/// Tracks, per region tree, which live tasks last wrote/read which index
/// spaces, and computes the dependence edges a newly issued task needs.
///
/// This is the executor-side analogue of the paper's logical + physical
/// analysis collapsed into one precise pass: uses are recorded at subregion
/// (index space) granularity, interference is domain overlap plus privilege
/// and field-mask conflict. Reductions are conservatively ordered like
/// writes by the executor (a legal serialization; the *safety analysis* in
/// src/analysis still treats reductions as commuting, per the paper).
///
/// Not thread-safe: called only from the issuing thread, matching the
/// sequential-issue semantics of the programming model.
class DependenceTracker {
 public:
  explicit DependenceTracker(const RegionForest& forest) : forest_(&forest) {}

  /// Record that `node` uses `ispace` (in region tree `tree`) with the given
  /// field mask. Appends required predecessor nodes to `out_deps` (may
  /// contain duplicates; caller dedupes). Completed tasks are skipped and
  /// compacted away.
  ///
  /// `through`/`through_disjoint` identify the partition the subregion was
  /// taken from (invalid for root regions): two different subregions of the
  /// same disjoint partition can never overlap, so the tracker skips the
  /// domain test for such pairs — the same whole-partition reasoning that
  /// makes Legion's analysis of index launches cheap (§5).
  ///
  /// `keep_done` must be true while a trace is being captured (see
  /// collect_conflicting_uses): edges to already-completed predecessors
  /// have to land in the capture, or replay loses the ordering.
  ///
  /// `scan` = false records the use without probing for conflicts (no edges,
  /// no prune): the caller holds a checked inter-launch certificate proving
  /// no recorded use can conflict. The use itself must still be recorded —
  /// uncertified later launches depend on finding it.
  void record_use(uint32_t tree, IndexSpaceId ispace, uint64_t fields, bool writes,
                  PartitionId through, bool through_disjoint, const TaskNodePtr& node,
                  std::vector<TaskNodePtr>& out_deps, bool keep_done = false,
                  bool scan = true);

  /// Install a fully-formed entry without scanning for conflicts — the
  /// GroupDependenceTracker materializing one summarized color into
  /// per-point state. Ordering among seeded uses was already established by
  /// the group edges; if the entry already exists the uses are appended in
  /// program order.
  void seed_entry(uint32_t tree, IndexSpaceId ispace, PartitionId through,
                  bool through_disjoint, std::vector<TaskUse>&& writers,
                  std::vector<TaskUse>&& readers);

  /// Drop all recorded uses (used at trace fences and wait_all).
  void reset();

  uint64_t dependence_tests() const {
    return dependence_tests_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    IndexSpaceId ispace;
    PartitionId through;            // partition this subregion came from
    bool through_disjoint = false;
    std::vector<TaskUse> writers;  // writers/reducers since the last covering write
    std::vector<TaskUse> readers;
  };

  /// Per-region-tree state: the entry table plus a bounding-volume
  /// hierarchy over entry bounds. The BVH turns the per-use candidate scan
  /// from O(entries) into O(log entries + matches) — the in-process
  /// analogue of the BVH Legion's physical analysis uses (§5). Entries
  /// created since the last build sit in `fresh` and are scanned linearly
  /// until the tree is rebuilt.
  struct TreeState {
    std::unordered_map<uint32_t, Entry> entries;  // by ispace id
    RectBVH bvh;
    std::vector<uint32_t> fresh;  // ispace ids not yet indexed
    std::size_t built = 0;        // entries covered by the current BVH
  };

  bool overlaps(IndexSpaceId a, IndexSpaceId b);
  bool contains(IndexSpaceId outer, IndexSpaceId inner);

  /// Candidate entries whose bounds overlap `bounds` (BVH + fresh list).
  void candidates(TreeState& ts, const Rect& bounds, std::vector<Entry*>& out);

  const RegionForest* forest_;
  std::unordered_map<uint32_t, TreeState> trees_;
  std::unordered_map<uint64_t, bool> overlap_cache_;
  std::unordered_map<uint64_t, bool> contains_cache_;
  /// Atomic so Runtime::stats() can read it live mid-run; all writes come
  /// from the issuing thread.
  std::atomic<uint64_t> dependence_tests_{0};
};

}  // namespace idxl
