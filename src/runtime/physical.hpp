#pragma once

#include "region/accessor.hpp"
#include "runtime/fault.hpp"
#include "runtime/types.hpp"

namespace idxl {

/// A task's mapped view of one region argument. All forest lookups happen
/// here, at issue time ("mapping"); by execution the view is self-contained
/// raw pointers, so task bodies never race with concurrent issuance
/// mutating the forest (subregion creation). Accessors enforce the declared
/// privilege and field set.
class PhysicalRegion {
 public:
  PhysicalRegion(RegionForest& forest, RegionId region, const std::vector<FieldId>& fields,
                 Privilege priv, ReductionOp redop)
      : region_(region),
        domain_(&forest.region_domain(region)),
        storage_bounds_(forest.storage_bounds(region)),
        priv_(priv),
        redop_(redop) {
    const FieldSpaceId fspace = forest.region(region).fspace;
    resolved_.reserve(fields.size());
    for (FieldId f : fields)
      resolved_.push_back(
          ResolvedField{f, forest.field_data(region, f), forest.field(fspace, f).size});
  }

  struct ResolvedField {
    FieldId id;
    std::byte* data;
    std::size_t size;
  };

  /// Construct over explicit storage buffers (one per field) instead of the
  /// forest's root storage — the sharded runtime's per-shard replicas.
  PhysicalRegion(RegionId region, const Domain* domain, const Rect& storage_bounds,
                 std::vector<ResolvedField> resolved, Privilege priv, ReductionOp redop)
      : region_(region),
        domain_(domain),
        storage_bounds_(storage_bounds),
        resolved_(std::move(resolved)),
        priv_(priv),
        redop_(redop) {}

  template <typename T>
  Accessor<T> accessor(FieldId f) const {
    for (const ResolvedField& rf : resolved_)
      if (rf.id == f)
        return Accessor<T>(rf.data, rf.size, storage_bounds_, domain_, priv_, redop_);
    throw RuntimeError("idxl: field was not requested by this region argument");
  }

  RegionId region_id() const { return region_; }
  const Domain& domain() const { return *domain_; }
  Privilege privilege() const { return priv_; }

  /// Fill every element of `f` in this view with the `size`-byte pattern.
  /// Requires write privilege. Used by Runtime::fill; exposed for tasks
  /// that initialize type-erased data.
  void fill_bytes(FieldId f, const void* pattern, std::size_t size) {
    IDXL_REQUIRE(priv_ == Privilege::kWrite || priv_ == Privilege::kReadWrite,
                 "fill requires write privilege");
    for (const ResolvedField& rf : resolved_) {
      if (rf.id != f) continue;
      IDXL_REQUIRE(rf.size == size, "fill pattern size does not match the field");
      domain_->for_each([&](const Point& p) {
        std::memcpy(rf.data + static_cast<std::size_t>(storage_bounds_.linearize(p)) * size,
                    pattern, size);
      });
      return;
    }
    throw RuntimeError("idxl: field was not requested by this region argument");
  }

  /// Append every resolved field's bytes over this view's domain to `out`,
  /// fields in argument order, elements in Domain::for_each order. The
  /// symmetric pair to copy_in: the owning process extracts its written
  /// subregion, the others apply it — the explicit data movement Legion
  /// performs implicitly between memories.
  void copy_out(std::vector<std::byte>& out) const {
    for (const ResolvedField& rf : resolved_) {
      domain_->for_each([&](const Point& p) {
        const std::byte* src =
            rf.data + static_cast<std::size_t>(storage_bounds_.linearize(p)) * rf.size;
        out.insert(out.end(), src, src + rf.size);
      });
    }
  }

  /// Apply bytes produced by copy_out on an identical view, reading from
  /// `in` starting at `offset`; returns the offset one past the consumed
  /// range. Throws RuntimeError if `in` is too short.
  std::size_t copy_in(const std::vector<std::byte>& in, std::size_t offset) {
    for (const ResolvedField& rf : resolved_) {
      domain_->for_each([&](const Point& p) {
        IDXL_REQUIRE(offset + rf.size <= in.size(),
                     "remote region payload shorter than the region view");
        std::memcpy(rf.data + static_cast<std::size_t>(storage_bounds_.linearize(p)) * rf.size,
                    in.data() + offset, rf.size);
        offset += rf.size;
      });
    }
    return offset;
  }

  /// Append field `f` over `rect` (row-major) to `out` — the delta-transfer
  /// extraction: a halo strip instead of the whole view. `rect` must lie
  /// within the root's storage bounds.
  void copy_out_rect(FieldId f, const Rect& rect, std::vector<std::byte>& out) const {
    const ResolvedField& rf = resolve(f);
    IDXL_REQUIRE(storage_bounds_.contains(rect),
                 "transfer rect escapes the region's storage bounds");
    out.reserve(out.size() + static_cast<std::size_t>(rect.volume()) * rf.size);
    for (const Point& p : rect) {
      const std::byte* src =
          rf.data + static_cast<std::size_t>(storage_bounds_.linearize(p)) * rf.size;
      out.insert(out.end(), src, src + rf.size);
    }
  }

  /// Apply a copy_out_rect payload to field `f` over `rect`. The symmetric
  /// pair: byte count must match the rect exactly.
  void copy_in_rect(FieldId f, const Rect& rect, const std::vector<std::byte>& in) {
    const ResolvedField& rf = resolve(f);
    IDXL_REQUIRE(storage_bounds_.contains(rect),
                 "transfer rect escapes the region's storage bounds");
    IDXL_REQUIRE(in.size() == static_cast<std::size_t>(rect.volume()) * rf.size,
                 "region patch payload does not match its rect");
    std::size_t offset = 0;
    for (const Point& p : rect) {
      std::memcpy(rf.data + static_cast<std::size_t>(storage_bounds_.linearize(p)) * rf.size,
                  in.data() + offset, rf.size);
      offset += rf.size;
    }
  }

 private:
  const ResolvedField& resolve(FieldId f) const {
    for (const ResolvedField& rf : resolved_)
      if (rf.id == f) return rf;
    throw RuntimeError("idxl: field was not requested by this region argument");
  }

  RegionId region_;
  const Domain* domain_;
  Rect storage_bounds_;
  std::vector<ResolvedField> resolved_;
  Privilege priv_;
  ReductionOp redop_;
};

/// Everything a task body receives: its launch point, the launch domain,
/// by-value arguments and mapped regions.
struct TaskContext {
  Point point = Point::p1(0);
  Domain launch_domain = Domain::line(1);
  /// The executing task's function id — lets post-execution hooks
  /// (on_task_success) dispatch on *what* ran, e.g. the distributed
  /// runtime's transfer task vs. an application body.
  TaskFnId fn = UINT32_MAX;
  const ArgBuffer* scalar_args = nullptr;
  std::vector<PhysicalRegion> regions;
  /// Scalar result of this task; collected by index launches issued with a
  /// result_redop (ignored otherwise).
  double return_value = 0.0;

  PhysicalRegion& region(std::size_t i) {
    IDXL_REQUIRE(i < regions.size(), "region argument index out of range");
    return regions[i];
  }

  template <typename T>
  const T& arg() const {
    IDXL_REQUIRE(scalar_args != nullptr, "task has no scalar arguments");
    return scalar_args->as<T>();
  }

  // --- fault API (docs/ROBUSTNESS.md) ---

  /// True once this attempt has been cancelled (per-launch timeout fired,
  /// the watchdog cancelled the run, or Runtime::cancel_all). Cancellation
  /// is cooperative: a body that returns normally still counts as success.
  bool cancelled() const { return current_task_cancelled(); }

  /// Throw TaskCancelled if cancelled() — the idiomatic poll inside loops of
  /// long-running bodies. The runtime records the task as timed out or
  /// cancelled (not retried).
  void check_cancelled() const {
    if (current_task_cancelled()) throw TaskCancelled();
  }

  /// 0 on the first execution, k on the k-th retry.
  uint32_t attempt() const { return current_fault_frame().attempt; }

  /// Fail this task explicitly. Retried under the launch's retry policy;
  /// once retries are exhausted the failure poisons downstream tasks and
  /// surfaces in the FaultReport with `message`.
  [[noreturn]] void fail(const std::string& message) const { throw TaskFailure(message); }
};

using TaskFn = std::function<void(TaskContext&)>;

}  // namespace idxl
