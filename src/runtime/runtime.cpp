#include "runtime/runtime.hpp"

#include <algorithm>
#include <unordered_set>

namespace idxl {

Runtime::Runtime(RuntimeConfig config)
    : config_(config),
      tracker_(forest_),
      profiler_(std::make_unique<Profiler>(config.enable_profiling)),
      prof_(config.enable_profiling ? profiler_.get() : nullptr),
      pool_(std::make_unique<ThreadPool>(config.workers)) {}

Runtime::~Runtime() { wait_all(); }

TaskFnId Runtime::register_task(std::string name, TaskFn fn) {
  IDXL_REQUIRE(static_cast<bool>(fn), "task body must be callable");
  task_prof_names_.push_back(prof_ != nullptr ? prof_->intern(name) : 0);
  task_registry_.emplace_back(std::move(name), std::move(fn));
  return static_cast<TaskFnId>(task_registry_.size() - 1);
}

LaunchResult Runtime::execute(const TaskLauncher& launcher) {
  ProfileScope issue_scope(prof_, ProfCategory::kIssue, Profiler::kNameIssue);
  ++stats_.runtime_calls;
  ++stats_.single_launches;
  LaunchResult result;  // single task: trivially safe, never an index launch
  std::shared_ptr<Future::State> collect;
  if (launcher.result_redop != ReductionOp::kNone) {
    collect = std::make_shared<Future::State>();
    collect->op = launcher.result_redop;
    collect->values.assign(1, 0.0);
    result.future.state_ = collect;
  }
  issue_point_task(launcher.task, launcher.point, launcher.launch_domain,
                   launcher.args, launcher.scalar_args, collect,
                   collect != nullptr ? 0 : -1);
  return result;
}

std::vector<RegionArg> Runtime::project_args(const IndexLauncher& launcher,
                                             const Point& p) {
  std::vector<RegionArg> args;
  args.reserve(launcher.args.size());
  for (const ProjectedArg& pa : launcher.args) {
    const Point color = pa.functor(p);
    RegionArg ra;
    ra.region = forest_.subregion(pa.parent, pa.partition, color);
    ra.fields = pa.fields;
    ra.privilege = pa.privilege;
    ra.redop = pa.redop;
    args.push_back(std::move(ra));
  }
  return args;
}

void Runtime::expand_as_task_loop(const IndexLauncher& launcher,
                                  const std::shared_ptr<Future::State>& collect) {
  // The "original task loop" branch: |D| individual launches in program
  // order, each a separate runtime call (this is what the paper's No-IDX
  // configurations measure).
  int64_t rank = 0;
  launcher.domain.for_each([&](const Point& p) {
    ++stats_.runtime_calls;
    ++stats_.single_launches;
    issue_point_task(launcher.task, p, launcher.domain, project_args(launcher, p),
                     launcher.scalar_args, collect, rank++);
  });
}

LaunchResult Runtime::execute_index(const IndexLauncher& launcher) {
  IDXL_REQUIRE(launcher.task < task_registry_.size(), "unknown task id");
  IDXL_REQUIRE(!launcher.domain.empty(), "index launch over an empty domain");
  ProfileScope issue_scope(prof_, ProfCategory::kIssue,
                           prof_ != nullptr ? task_prof_names_[launcher.task]
                                            : Profiler::kNameIssue);

  LaunchResult result;
  std::shared_ptr<Future::State> collect;
  if (launcher.result_redop != ReductionOp::kNone) {
    collect = std::make_shared<Future::State>();
    collect->op = launcher.result_redop;
    collect->values.assign(static_cast<std::size_t>(launcher.domain.volume()), 0.0);
    result.future.state_ = collect;
  }

  if (!config_.enable_index_launches) {
    // No-IDX mode: the launch group is issued as individual tasks. Safety
    // is the application's own program order, so no analysis runs.
    expand_as_task_loop(launcher, collect);
    return result;
  }

  ++stats_.runtime_calls;  // one bulk issuance call (§5)

  if (launcher.assume_verified) {
    ++stats_.launches_assumed_verified;
    result.safety.outcome = SafetyOutcome::kSafeUnchecked;
  } else if (!replaying_) {
    // Hybrid safety analysis (§3/§4). When replaying a trace the launch was
    // already verified during capture.
    std::vector<CheckArg> check_args;
    check_args.reserve(launcher.args.size());
    for (const ProjectedArg& pa : launcher.args) {
      CheckArg ca;
      ca.functor = &pa.functor;
      ca.color_space = forest_.color_space(pa.partition);
      ca.partition_disjoint = forest_.is_disjoint(pa.partition);
      ca.partition_uid = pa.partition.id;
      ca.collection_uid = forest_.region(pa.parent).tree_id;
      ca.field_mask = field_mask(pa.fields);
      ca.priv = pa.privilege;
      ca.redop = pa.redop;
      check_args.push_back(ca);
    }
    AnalysisOptions options;
    options.enable_dynamic_checks = config_.enable_dynamic_checks;
    options.extended_static = config_.extended_static_analysis;
    options.profiler = prof_;
    if (config_.enable_verdict_cache) options.verdict_cache = &verdict_cache_;
    auto pair_independent = [&](std::size_t i, std::size_t j) {
      return forest_.partitions_independent(launcher.args[i].parent,
                                            launcher.args[i].partition,
                                            launcher.args[j].parent,
                                            launcher.args[j].partition);
    };
    {
      ProfileScope safety_scope(prof_, ProfCategory::kSafety,
                                Profiler::kNameSafetyCheck);
      result.safety = analyze_launch_safety(check_args, launcher.domain, options,
                                            pair_independent);
    }
    stats_.dynamic_check_points += result.safety.dynamic_points;
    if (config_.enable_verdict_cache) {
      if (result.safety.cache_hit)
        ++stats_.verdict_cache_hits;
      else
        ++stats_.verdict_cache_misses;
    }

    switch (result.safety.outcome) {
      case SafetyOutcome::kSafeStatic: ++stats_.launches_safe_static; break;
      case SafetyOutcome::kSafeDynamic: ++stats_.launches_safe_dynamic; break;
      case SafetyOutcome::kSafeUnchecked: ++stats_.launches_safe_unchecked; break;
      case SafetyOutcome::kUnsafe: {
        ++stats_.launches_unsafe;
        IDXL_REQUIRE(!config_.strict_unsafe,
                     ("unsafe index launch: " + result.safety.reason).c_str());
        expand_as_task_loop(launcher, collect);
        return result;
      }
    }
  }

  // Safe: expand into point tasks. In this in-process executor "expansion"
  // assigns work directly to the scheduler; the distributed pipeline's
  // sharded/sliced distribution is modeled by src/sim.
  result.ran_as_index_launch = true;
  ++stats_.index_launches;
  int64_t rank = 0;
  launcher.domain.for_each([&](const Point& p) {
    issue_point_task(launcher.task, p, launcher.domain, project_args(launcher, p),
                     launcher.scalar_args, collect, rank++);
  });
  return result;
}

void Runtime::issue_point_task(TaskFnId fn, const Point& point,
                               const Domain& launch_domain,
                               const std::vector<RegionArg>& args,
                               const ArgBuffer& scalar_args,
                               const std::shared_ptr<Future::State>& collect,
                               int64_t rank) {
  IDXL_REQUIRE(fn < task_registry_.size(), "unknown task id");
  ++stats_.point_tasks;

  auto node = std::make_shared<TaskNode>();
  node->seq = next_seq_++;
  node->label = task_registry_[fn].first + "@" + point.to_string();
  node->prof_name = prof_ != nullptr ? task_prof_names_[fn] : 0;

  // Build the closure now; regions resolve to storage views at execution.
  std::vector<PhysicalRegion> regions;
  regions.reserve(args.size());
  for (const RegionArg& ra : args) {
    IDXL_REQUIRE(ra.region.valid(), "launcher has an invalid region argument");
    regions.emplace_back(forest_, ra.region, ra.fields, ra.privilege, ra.redop);
  }
  const TaskFn& body = task_registry_[fn].second;
  ArgBuffer scalar_copy = scalar_args;
  node->work = [body, point, launch_domain, scalar = std::move(scalar_copy),
                regions = std::move(regions), collect, rank]() mutable {
    TaskContext ctx;
    ctx.point = point;
    ctx.launch_domain = launch_domain;
    ctx.scalar_args = &scalar;
    ctx.regions = std::move(regions);
    body(ctx);
    if (collect != nullptr) {
      IDXL_ASSERT(rank >= 0 &&
                  rank < static_cast<int64_t>(collect->values.size()));
      // Each task owns its slot; no synchronization needed beyond the
      // wait_all() barrier in Future::get().
      collect->values[static_cast<std::size_t>(rank)] = ctx.return_value;
    }
  };

  // --- dependence discovery: tracker scan, or trace replay ---
  std::vector<TaskNodePtr> deps;
  if (replaying_) {
    ProfileScope replay_scope(prof_, ProfCategory::kTrace,
                              Profiler::kNameTraceReplay, node->seq);
    IDXL_REQUIRE(replay_cursor_ < active_trace_->steps.size(),
                 "trace replay issued more tasks than were captured");
    const TraceStep& step = active_trace_->steps[replay_cursor_];
    IDXL_REQUIRE(step.fn == fn && step.point == point,
                 "trace replay diverged from the captured task sequence");
    for (std::size_t i = 0; i < args.size(); ++i) {
      const RegionInfo& info = forest_.region(args[i].region);
      IDXL_REQUIRE(i < step.ispaces.size() && step.ispaces[i] == info.ispace.id,
                   "trace replay diverged in region arguments");
    }
    for (uint32_t dep_idx : step.dep_indices) deps.push_back(trace_nodes_[dep_idx]);
    ++replay_cursor_;
    ++stats_.traced_tasks_replayed;
    trace_nodes_.push_back(node);
  } else {
    {
      ProfileScope dep_scope(prof_, ProfCategory::kDependence,
                             Profiler::kNameDependence, node->seq);
      for (const RegionArg& ra : args) {
        const RegionInfo& info = forest_.region(ra.region);
        const bool through_disjoint =
            info.through.valid() && forest_.is_disjoint(info.through);
        tracker_.record_use(info.tree_id, info.ispace, field_mask(ra.fields),
                            privilege_writes(ra.privilege), info.through,
                            through_disjoint, node, deps);
      }
      // Dedupe (one arg pair can surface the same predecessor repeatedly).
      std::sort(deps.begin(), deps.end());
      deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    }

    if (active_trace_ != nullptr) {
      ProfileScope capture_scope(prof_, ProfCategory::kTrace,
                                 Profiler::kNameTraceCapture, node->seq);
      TraceStep step;
      step.fn = fn;
      step.point = point;
      for (const RegionArg& ra : args)
        step.ispaces.push_back(forest_.region(ra.region).ispace.id);
      std::unordered_map<const TaskNode*, uint32_t> index_of;
      for (uint32_t i = 0; i < trace_nodes_.size(); ++i)
        index_of[trace_nodes_[i].get()] = i;
      for (const TaskNodePtr& d : deps) {
        auto it = index_of.find(d.get());
        // Pre-trace dependencies are dropped: traces are fenced, so they
        // are satisfied by construction on replay.
        if (it != index_of.end()) step.dep_indices.push_back(it->second);
      }
      active_trace_->steps.push_back(std::move(step));
      trace_nodes_.push_back(node);
    }
  }

  stats_.dependence_edges += deps.size();
  if (config_.record_task_graph) {
    graph_nodes_.emplace_back(node->seq, node->label);
    for (const TaskNodePtr& dep : deps) graph_edges_.emplace_back(dep->seq, node->seq);
  }
  if (prof_ != nullptr) {
    std::vector<uint64_t> dep_seqs;
    dep_seqs.reserve(deps.size());
    for (const TaskNodePtr& dep : deps) dep_seqs.push_back(dep->seq);
    prof_->record_edges(node->seq, dep_seqs);
  }
  schedule(node, deps);
}

std::string Runtime::export_task_graph_dot() const {
  IDXL_REQUIRE(config_.record_task_graph,
               "enable RuntimeConfig::record_task_graph to export the graph");
  std::string dot = "digraph tasks {\n  rankdir=TB;\n  node [shape=box];\n";
  for (const auto& [seq, label] : graph_nodes_) {
    dot += "  t" + std::to_string(seq) + " [label=\"" + label + "\"];\n";
  }
  for (const auto& [from, to] : graph_edges_) {
    dot += "  t" + std::to_string(from) + " -> t" + std::to_string(to) + ";\n";
  }
  dot += "}\n";
  return dot;
}

void Runtime::schedule(const TaskNodePtr& node, const std::vector<TaskNodePtr>& deps) {
  // `pending` starts at 1 (issue guard); each live predecessor adds one.
  // The increment must happen *before* the edge is published: a dependency
  // can complete and decrement the instant add_successor releases its lock,
  // and must never observe a count our side hasn't raised yet (double-ready).
  for (const TaskNodePtr& dep : deps) {
    node->pending.fetch_add(1, std::memory_order_relaxed);
    if (!dep->add_successor(node))
      node->pending.fetch_sub(1, std::memory_order_relaxed);  // already complete
  }
  if (node->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) make_ready(node);
}

void Runtime::make_ready(const TaskNodePtr& node) {
  // `ready_ns` is taken here — the moment every dependence was satisfied —
  // so the recorded queue wait is pure scheduler latency.
  const uint64_t ready_ns = prof_ != nullptr ? prof_->now_ns() : 0;
  pool_->submit([this, node, ready_ns] {
    if (prof_ != nullptr) {
      const uint64_t start_ns = prof_->now_ns();
      node->work();
      prof_->record(ProfCategory::kTask, node->prof_name, start_ns,
                    prof_->now_ns(), node->seq, start_ns - ready_ns);
    } else {
      node->work();
    }
    node->work = nullptr;  // release captured resources promptly
    for (const TaskNodePtr& succ : node->complete())
      if (succ->pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
        make_ready(succ);
  });
}

void Runtime::begin_trace(uint32_t trace_id) {
  IDXL_REQUIRE(active_trace_ == nullptr, "traces cannot nest");
  wait_all();
  tracker_.reset();  // the fence makes prior state irrelevant
  Trace& trace = traces_[trace_id];
  active_trace_ = &trace;
  replaying_ = trace.captured;
  replay_cursor_ = 0;
  trace_nodes_.clear();
}

void Runtime::end_trace(uint32_t trace_id) {
  IDXL_REQUIRE(active_trace_ == &traces_[trace_id], "end_trace without begin_trace");
  if (replaying_) {
    IDXL_REQUIRE(replay_cursor_ == active_trace_->steps.size(),
                 "trace replay issued fewer tasks than were captured");
  } else {
    active_trace_->captured = true;
  }
  active_trace_ = nullptr;
  replaying_ = false;
  trace_nodes_.clear();
  wait_all();
  tracker_.reset();
}

TaskFnId Runtime::fill_task() {
  if (fill_task_ == UINT32_MAX) {
    fill_task_ = register_task("idxl_fill", [](TaskContext& ctx) {
      const auto& args = ctx.arg<FillArgs>();
      ctx.region(0).fill_bytes(args.field, args.pattern, args.size);
    });
  }
  return fill_task_;
}

void Runtime::wait_all() {
  ProfileScope wait_scope(prof_, ProfCategory::kRuntime, Profiler::kNameWaitAll);
  pool_->wait_idle();
  stats_.dependence_tests = tracker_.dependence_tests();
}

double Future::get(Runtime& rt) const {
  IDXL_REQUIRE(valid(), "get() on an empty Future");
  rt.wait_all();
  ProfileScope reduce_scope(rt.prof_, ProfCategory::kReduce,
                            Profiler::kNameFutureReduce);
  IDXL_ASSERT(!state_->values.empty());
  double acc = state_->values.front();
  for (std::size_t i = 1; i < state_->values.size(); ++i)
    acc = apply_reduction(state_->op, acc, state_->values[i]);
  return acc;
}

}  // namespace idxl
