#include "runtime/runtime.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <unordered_set>

namespace idxl {

namespace {

bool env_flag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  return !(v[0] == '0' || v[0] == 'n' || v[0] == 'N' || v[0] == 'f' || v[0] == 'F');
}

uint64_t env_u64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

/// IDXL_* environment overrides for the observability knobs, so a hung
/// production run can be re-launched with a watchdog (or the recorder
/// resized) without a rebuild. Documented in docs/OBSERVABILITY.md.
RuntimeConfig apply_env_overrides(RuntimeConfig cfg) {
  cfg.enable_flight_recorder =
      env_flag("IDXL_FLIGHT_RECORDER", cfg.enable_flight_recorder);
  cfg.flight_recorder_capacity = static_cast<std::size_t>(
      env_u64("IDXL_FLIGHT_CAPACITY", cfg.flight_recorder_capacity));
  cfg.enable_watchdog = env_flag("IDXL_WATCHDOG", cfg.enable_watchdog);
  cfg.watchdog_check_period_ms = static_cast<uint32_t>(
      env_u64("IDXL_WATCHDOG_PERIOD_MS", cfg.watchdog_check_period_ms));
  cfg.watchdog_stall_window_ms = static_cast<uint32_t>(
      env_u64("IDXL_WATCHDOG_WINDOW_MS", cfg.watchdog_stall_window_ms));
  cfg.watchdog_abort = env_flag("IDXL_WATCHDOG_ABORT", cfg.watchdog_abort);
  cfg.watchdog_cancel = env_flag("IDXL_WATCHDOG_CANCEL", cfg.watchdog_cancel);
  if (const char* v = std::getenv("IDXL_WATCHDOG_DUMP")) cfg.watchdog_dump_path = v;
  if (auto plan = FaultPlan::from_env()) cfg.fault_plan = std::move(plan);
  return cfg;
}

obs::LifecycleDetail detail_of(FaultKind kind) {
  switch (kind) {
    case FaultKind::kException: return obs::LifecycleDetail::kException;
    case FaultKind::kExplicit: return obs::LifecycleDetail::kExplicitFail;
    case FaultKind::kInjected: return obs::LifecycleDetail::kInjected;
    case FaultKind::kTimeout: return obs::LifecycleDetail::kTimeout;
    case FaultKind::kCancelled: return obs::LifecycleDetail::kCancel;
    default: return obs::LifecycleDetail::kNone;
  }
}

obs::LifecycleDetail detail_of(SafetyOutcome outcome) {
  switch (outcome) {
    case SafetyOutcome::kSafeStatic: return obs::LifecycleDetail::kSafeStatic;
    case SafetyOutcome::kSafeDynamic: return obs::LifecycleDetail::kSafeDynamic;
    case SafetyOutcome::kSafeUnchecked: return obs::LifecycleDetail::kSafeUnchecked;
    case SafetyOutcome::kUnsafe: return obs::LifecycleDetail::kUnsafe;
  }
  return obs::LifecycleDetail::kNone;
}

}  // namespace

Runtime::Runtime(RuntimeConfig config, std::shared_ptr<RegionForest> forest)
    : config_(apply_env_overrides(std::move(config))),
      forest_(forest != nullptr ? std::move(forest)
                                : std::make_shared<RegionForest>()),
      tracker_(*forest_),
      group_(*forest_),
      profiler_(std::make_unique<Profiler>(config_.enable_profiling)),
      prof_(config_.enable_profiling ? profiler_.get() : nullptr),
      recorder_(config_.enable_flight_recorder, config_.flight_recorder_capacity,
                profiler_->epoch_ns()),
      rec_(config_.enable_flight_recorder ? &recorder_ : nullptr),
      pool_(std::make_unique<ThreadPool>(config_.workers)),
      live_enabled_(config_.enable_watchdog),
      fault_plan_(config_.fault_plan) {
  init_metrics();
  if (config_.enable_watchdog) {
    obs::WatchdogConfig wc;
    wc.check_period_ms = config_.watchdog_check_period_ms;
    wc.stall_window_ms = config_.watchdog_stall_window_ms;
    wc.tail_events = config_.watchdog_tail_events;
    wc.abort_on_stall = config_.watchdog_abort;
    wc.cancel_on_stall = config_.watchdog_cancel;
    wc.dump_path = config_.watchdog_dump_path;
    watchdog_ = std::make_unique<obs::Watchdog>(
        std::move(wc),
        [this] {
          const uint64_t done = cells_.tasks_completed.value();
          return std::pair<uint64_t, uint64_t>(
              done, cells_.point_tasks.value() - done);
        },
        [this] {
          if (rec_ != nullptr) {
            obs::FlightEvent ev;
            ev.kind = obs::LifecycleEvent::kStall;
            rec_->record(ev);
          }
          return stall_report();
        });
    watchdog_->set_stall_action([this] { cancel_all(); });
    watchdog_->start();
  }
}

void Runtime::cancel_all() { cancel_all_.store(true, std::memory_order_release); }

void Runtime::clear_faults() {
  faults_.clear();
  cancel_all_.store(false, std::memory_order_release);
}

Runtime::~Runtime() {
  if (watchdog_ != nullptr) watchdog_->stop();
  metrics_.stop_sampler();
  wait_all();
}

void Runtime::init_metrics() {
  obs::MetricsRegistry& m = metrics_;
  cells_.runtime_calls =
      m.counter("idxl_runtime_calls_total", "task issuance API calls");
  cells_.single_launches = m.counter("idxl_launches_total", "launches by kind",
                                     {{"kind", "single"}});
  cells_.index_launches = m.counter("idxl_launches_total", "", {{"kind", "index"}});
  cells_.point_tasks = m.counter("idxl_point_tasks_total", "point tasks issued");
  cells_.tasks_completed =
      m.counter("idxl_tasks_completed_total", "task bodies completed");
  cells_.dependence_edges =
      m.counter("idxl_dependence_edges_total", "dependence edges discovered");
  const char* safety_help = "index-launch safety verdicts by outcome";
  cells_.safe_static = m.counter("idxl_launch_safety_total", safety_help,
                                 {{"outcome", "safe_static"}});
  cells_.safe_dynamic = m.counter("idxl_launch_safety_total", safety_help,
                                  {{"outcome", "safe_dynamic"}});
  cells_.safe_unchecked = m.counter("idxl_launch_safety_total", safety_help,
                                    {{"outcome", "safe_unchecked"}});
  cells_.assumed_verified = m.counter("idxl_launch_safety_total", safety_help,
                                      {{"outcome", "assumed_verified"}});
  cells_.unsafe =
      m.counter("idxl_launch_safety_total", safety_help, {{"outcome", "unsafe"}});
  cells_.dynamic_check_points = m.counter(
      "idxl_dynamic_check_points_total", "functor evaluations in dynamic checks");
  cells_.traced_replayed = m.counter("idxl_traced_tasks_replayed_total",
                                     "tasks replayed from captured traces");
  cells_.cache_hit_launches =
      m.counter("idxl_verdict_cache_launches_total",
                "launches by verdict-cache result", {{"result", "hit"}});
  cells_.cache_miss_launches =
      m.counter("idxl_verdict_cache_launches_total", "", {{"result", "miss"}});
  cells_.group_launches = m.counter("idxl_group_launches_total",
                                    "index launches issued on the group path");
  cells_.group_edges = m.counter("idxl_group_edges_total",
                                 "launch-level summary conflicts (O(args))");
  cells_.group_fallbacks = m.counter(
      "idxl_group_fallbacks_total", "safe launches forced onto the per-point path");
  cells_.group_materializations = m.counter(
      "idxl_group_materializations_total", "trees flushed group -> per-point");
  cells_.interference_pair_tests =
      m.counter("idxl_interference_pair_tests_total",
                "inter-launch pair analyses run (cache misses)");
  cells_.interference_skips =
      m.counter("idxl_interference_skips_total",
                "group-walk skips authorized by checked pair certificates");
  const char* fault_help = "terminally failed tasks by root cause";
  cells_.fault_exception =
      m.counter("idxl_fault_tasks_total", fault_help, {{"kind", "exception"}});
  cells_.fault_explicit =
      m.counter("idxl_fault_tasks_total", "", {{"kind", "explicit"}});
  cells_.fault_injected =
      m.counter("idxl_fault_tasks_total", "", {{"kind", "injected"}});
  cells_.fault_timeout = m.counter("idxl_fault_tasks_total", "", {{"kind", "timeout"}});
  cells_.fault_cancelled =
      m.counter("idxl_fault_tasks_total", "", {{"kind", "cancelled"}});
  cells_.fault_poisoned = m.counter(
      "idxl_fault_poisoned_total", "tasks skipped because an upstream failure poisoned them");
  cells_.fault_injections =
      m.counter("idxl_fault_injections_total", "FaultPlan injections fired");
  cells_.retry_attempts =
      m.counter("idxl_retry_attempts_total", "failed attempts re-enqueued");
  cells_.retry_succeeded = m.counter("idxl_retry_succeeded_total",
                                     "tasks that succeeded after at least one retry");
  cells_.task_duration =
      m.histogram("idxl_task_duration_ns", "task body execution time");
  cells_.queue_wait =
      m.histogram("idxl_task_queue_wait_ns", "ready -> running scheduler latency");

  // Externally-owned values surface as gauges refreshed by a collector at
  // snapshot time — the trackers, verdict cache, pool and recorder keep
  // their own (thread-safe) counters.
  const obs::Gauge dep_tests = m.gauge(
      "idxl_dependence_tests", "per-use conflict tests, both tiers (live)");
  const obs::Gauge vc_hits =
      m.gauge("idxl_verdict_cache_hits", "verdict cache lookup hits");
  const obs::Gauge vc_misses =
      m.gauge("idxl_verdict_cache_misses", "verdict cache lookup misses");
  const obs::Gauge vc_uncacheable = m.gauge(
      "idxl_verdict_cache_uncacheable", "lookups skipped (opaque functor)");
  const obs::Gauge vc_entries =
      m.gauge("idxl_verdict_cache_entries", "verdicts currently cached");
  const obs::Gauge ic_hits =
      m.gauge("idxl_interference_cache_hits", "pair-verdict cache lookup hits");
  const obs::Gauge ic_misses =
      m.gauge("idxl_interference_cache_misses", "pair-verdict cache lookup misses");
  const obs::Gauge ic_imported = m.gauge("idxl_interference_cache_imported",
                                         "pair certificates received from a driver");
  const obs::Gauge ic_validated =
      m.gauge("idxl_interference_cache_validated",
              "imported pair certificates that passed the checker");
  const obs::Gauge ic_rejected =
      m.gauge("idxl_interference_cache_rejected",
              "imported pair certificates refused by the checker");
  const obs::Gauge ic_entries =
      m.gauge("idxl_interference_cache_entries", "pair verdicts currently cached");
  const obs::Gauge q_depth =
      m.gauge("idxl_pool_queue_depth", "ready tasks waiting for a worker");
  const obs::Gauge q_exec =
      m.gauge("idxl_pool_executing", "tasks mid-execution on workers");
  const obs::Gauge q_workers = m.gauge("idxl_pool_workers", "worker threads");
  const obs::Gauge fr_events = m.gauge("idxl_flight_recorder_events",
                                       "lifecycle events recorded (monotone)");
  const obs::Gauge fr_over = m.gauge("idxl_flight_recorder_overwritten",
                                     "lifecycle events lost to ring wraparound");
  m.add_collector([this, dep_tests, vc_hits, vc_misses, vc_uncacheable,
                   vc_entries, ic_hits, ic_misses, ic_imported, ic_validated,
                   ic_rejected, ic_entries, q_depth, q_exec, q_workers, fr_events,
                   fr_over] {
    dep_tests.set(static_cast<int64_t>(tracker_.dependence_tests() +
                                       group_.dependence_tests()));
    const VerdictCache::Counters c = verdict_cache_.counters();
    vc_hits.set(static_cast<int64_t>(c.hits));
    vc_misses.set(static_cast<int64_t>(c.misses));
    vc_uncacheable.set(static_cast<int64_t>(c.uncacheable));
    vc_entries.set(static_cast<int64_t>(verdict_cache_.size()));
    const InterferenceCache::Counters ic = interference_cache_.counters();
    ic_hits.set(static_cast<int64_t>(ic.hits));
    ic_misses.set(static_cast<int64_t>(ic.misses));
    ic_imported.set(static_cast<int64_t>(ic.imported));
    ic_validated.set(static_cast<int64_t>(ic.validated));
    ic_rejected.set(static_cast<int64_t>(ic.rejected));
    ic_entries.set(static_cast<int64_t>(interference_cache_.size()));
    q_depth.set(static_cast<int64_t>(pool_->queue_depth()));
    q_exec.set(static_cast<int64_t>(pool_->executing()));
    q_workers.set(static_cast<int64_t>(pool_->worker_count()));
    fr_events.set(static_cast<int64_t>(recorder_.recorded()));
    fr_over.set(static_cast<int64_t>(recorder_.overwritten()));
  });
}

RuntimeStats Runtime::stats() const {
  const obs::MetricsSnapshot snap = metrics_.snapshot();
  RuntimeStats s;
  s.runtime_calls = snap.value("idxl_runtime_calls_total");
  s.single_launches = snap.value("idxl_launches_total", {{"kind", "single"}});
  s.index_launches = snap.value("idxl_launches_total", {{"kind", "index"}});
  s.point_tasks = snap.value("idxl_point_tasks_total");
  s.tasks_completed = snap.value("idxl_tasks_completed_total");
  s.dependence_edges = snap.value("idxl_dependence_edges_total");
  s.launches_safe_static =
      snap.value("idxl_launch_safety_total", {{"outcome", "safe_static"}});
  s.launches_safe_dynamic =
      snap.value("idxl_launch_safety_total", {{"outcome", "safe_dynamic"}});
  s.launches_safe_unchecked =
      snap.value("idxl_launch_safety_total", {{"outcome", "safe_unchecked"}});
  s.launches_assumed_verified =
      snap.value("idxl_launch_safety_total", {{"outcome", "assumed_verified"}});
  s.launches_unsafe = snap.value("idxl_launch_safety_total", {{"outcome", "unsafe"}});
  s.dynamic_check_points = snap.value("idxl_dynamic_check_points_total");
  s.traced_tasks_replayed = snap.value("idxl_traced_tasks_replayed_total");
  s.dependence_tests = snap.value("idxl_dependence_tests");
  s.verdict_cache_hits =
      snap.value("idxl_verdict_cache_launches_total", {{"result", "hit"}});
  s.verdict_cache_misses =
      snap.value("idxl_verdict_cache_launches_total", {{"result", "miss"}});
  s.group_launches = snap.value("idxl_group_launches_total");
  s.group_edges = snap.value("idxl_group_edges_total");
  s.group_fallbacks = snap.value("idxl_group_fallbacks_total");
  s.group_materializations = snap.value("idxl_group_materializations_total");
  s.interference_pair_tests = snap.value("idxl_interference_pair_tests_total");
  s.interference_skips = snap.value("idxl_interference_skips_total");
  s.interference_cache_hits = snap.value("idxl_interference_cache_hits");
  s.interference_cache_misses = snap.value("idxl_interference_cache_misses");
  s.interference_imported = snap.value("idxl_interference_cache_imported");
  s.interference_validated = snap.value("idxl_interference_cache_validated");
  s.interference_rejected = snap.value("idxl_interference_cache_rejected");
  for (const char* kind : {"exception", "explicit", "injected", "timeout", "cancelled"})
    s.tasks_failed += snap.value("idxl_fault_tasks_total", {{"kind", kind}});
  s.tasks_poisoned = snap.value("idxl_fault_poisoned_total");
  s.fault_injections = snap.value("idxl_fault_injections_total");
  s.retry_attempts = snap.value("idxl_retry_attempts_total");
  s.retries_succeeded = snap.value("idxl_retry_succeeded_total");
  return s;
}

obs::Counter& Runtime::fault_cell(FaultKind kind) {
  switch (kind) {
    case FaultKind::kException: return cells_.fault_exception;
    case FaultKind::kExplicit: return cells_.fault_explicit;
    case FaultKind::kInjected: return cells_.fault_injected;
    case FaultKind::kTimeout: return cells_.fault_timeout;
    case FaultKind::kCancelled: return cells_.fault_cancelled;
    default: return cells_.fault_poisoned;
  }
}

obs::StallReport Runtime::stall_report() const {
  obs::StallReport report;
  report.completed = cells_.tasks_completed.value();
  report.pending = cells_.point_tasks.value() - report.completed;
  {
    std::lock_guard<std::mutex> lock(live_mu_);
    report.blocked.reserve(live_.size());
    for (const auto& [seq, task] : live_) {
      obs::BlockedTask bt;
      bt.seq = seq;
      bt.launch = task.launch;
      bt.label = task.label;
      // Report only the waits-for edges still unsatisfied: a predecessor
      // that completed has left the live table.
      for (uint64_t dep : task.deps)
        if (live_.count(dep) != 0) bt.waits_for.push_back(dep);
      report.blocked.push_back(std::move(bt));
    }
  }
  std::sort(report.blocked.begin(), report.blocked.end(),
            [](const obs::BlockedTask& a, const obs::BlockedTask& b) {
              return a.seq < b.seq;
            });
  report.recent = recorder_.tail(config_.watchdog_tail_events);
  report.metrics = metrics_.snapshot();
  return report;
}

void Runtime::record_ready(const TaskNode& node, uint64_t edge) {
  if (rec_ == nullptr) return;
  obs::FlightEvent ev;
  ev.kind = obs::LifecycleEvent::kReady;
  ev.seq = node.seq;
  ev.launch = node.launch;
  ev.edge = edge;
  rec_->record(ev);
}

TaskFnId Runtime::register_task(std::string name, TaskFn fn) {
  IDXL_REQUIRE(static_cast<bool>(fn), "task body must be callable");
  task_prof_names_.push_back(prof_ != nullptr ? prof_->intern(name) : 0);
  task_registry_.emplace_back(std::move(name), std::move(fn));
  return static_cast<TaskFnId>(task_registry_.size() - 1);
}

namespace {

/// Apply a remote owner's outcome to an external node's mapped regions.
/// Full-block outcomes (has_data) carry every written argument's bytes in
/// order; slim delta-mode outcomes carry only the rect patches addressed to
/// this rank — usually none, because the data plane ships bytes lazily when
/// a later consumer actually reads them.
void apply_remote_outcome(const RemoteOutcome& o,
                          std::vector<PhysicalRegion>& regions) {
  if (o.has_data) {
    std::size_t off = 0;
    for (PhysicalRegion& r : regions)
      if (privilege_writes(r.privilege())) off = r.copy_in(o.region_bytes, off);
    IDXL_REQUIRE(off == o.region_bytes.size(),
                 "remote outcome bytes do not match the task's written regions");
    return;
  }
  for (const RegionPatch& p : o.patches) {
    IDXL_REQUIRE(p.arg < regions.size(),
                 "remote region patch names an argument out of range");
    regions[p.arg].copy_in_rect(p.field, p.rect, p.bytes);
  }
}

}  // namespace

LaunchResult Runtime::execute(const TaskLauncher& launcher) {
  ProfileScope issue_scope(prof_, ProfCategory::kIssue, Profiler::kNameIssue);
  cells_.runtime_calls.inc();
  cells_.single_launches.inc();
  const uint64_t launch_id = next_launch_id_++;
  // A replicated descriptor carries the launch id its origin assigned; a
  // disagreement means this rank's issue stream diverged from the driver's.
  IDXL_REQUIRE(
      !launcher.trace_ctx.valid() || launcher.trace_ctx.launch == launch_id,
      "replicated launch id diverged from the descriptor's trace context");
  LaunchResult result;  // single task: trivially safe, never an index launch
  result.launch_id = launch_id;
  std::shared_ptr<Future::State> collect;
  if (launcher.result_redop != ReductionOp::kNone) {
    collect = std::make_shared<Future::State>();
    collect->op = launcher.result_redop;
    collect->values.assign(1, 0.0);
    result.future.state_ = collect;
  }
  issue_point_task(launcher.task, launcher.point, launcher.launch_domain,
                   launcher.args, launcher.scalar_args, launch_id, collect,
                   collect != nullptr ? 0 : -1,
                   RetryPolicy{launcher.max_retries, launcher.retry_backoff_ms,
                               launcher.timeout_ms},
                   launcher.internal);
  return result;
}

std::vector<RegionArg> Runtime::project_args(const IndexLauncher& launcher,
                                             const Point& p) {
  std::vector<RegionArg> args;
  args.reserve(launcher.args.size());
  for (const ProjectedArg& pa : launcher.args) {
    const Point color = pa.functor(p);
    RegionArg ra;
    ra.region = forest_->subregion(pa.parent, pa.partition, color);
    ra.fields = pa.fields;
    ra.privilege = pa.privilege;
    ra.redop = pa.redop;
    args.push_back(std::move(ra));
  }
  return args;
}

void Runtime::expand_as_task_loop(const IndexLauncher& launcher,
                                  uint64_t launch_id,
                                  const std::shared_ptr<Future::State>& collect) {
  // The "original task loop" branch: |D| individual launches in program
  // order, each a separate runtime call (this is what the paper's No-IDX
  // configurations measure).
  const RetryPolicy policy{launcher.max_retries, launcher.retry_backoff_ms,
                           launcher.timeout_ms};
  int64_t rank = 0;
  launcher.domain.for_each([&](const Point& p) {
    cells_.runtime_calls.inc();
    cells_.single_launches.inc();
    issue_point_task(launcher.task, p, launcher.domain, project_args(launcher, p),
                     launcher.scalar_args, launch_id, collect, rank++, policy);
  });
}

bool Runtime::group_eligible(const IndexLauncher& launcher) {
  // Every argument must go through a disjoint partition with an analyzable
  // (symbolic) functor, on a tree that is not summarized by a *different*
  // partition and holds no un-summarized per-point state. A launch using
  // two different partitions of one tree cannot be summarized either.
  for (std::size_t i = 0; i < launcher.args.size(); ++i) {
    const ProjectedArg& pa = launcher.args[i];
    if (!forest_->is_disjoint(pa.partition)) return false;
    if (!pa.functor.is_symbolic()) return false;
    const uint32_t tree = forest_->region(pa.parent).tree_id;
    if (!group_.groupable(tree, pa.partition)) return false;
    for (std::size_t j = 0; j < i; ++j) {
      if (forest_->region(launcher.args[j].parent).tree_id == tree &&
          launcher.args[j].partition != pa.partition)
        return false;
    }
  }
  return true;
}

void Runtime::materialize_tree(uint32_t tree) {
  if (!group_.has_state(tree)) return;
  ProfileScope scope(prof_, ProfCategory::kDependence, Profiler::kNameMaterialize);
  if (group_.materialize_into(tracker_, tree)) cells_.group_materializations.inc();
}

bool Runtime::history_certified_disjoint(uint32_t tree, const LaunchArgSummary& s,
                                         LazyFingerprint& fp) {
  ProfileScope scope(prof_, ProfCategory::kSafety, Profiler::kNameSafetyCheck);
  uint64_t pair_tests = 0;
  const bool disjoint = interference_history_.certified_disjoint(
      tree, s, fp, interference_cache_, !config_.interference_import_only,
      &pair_tests);
  cells_.interference_pair_tests.inc(pair_tests);
  return disjoint;
}

std::vector<std::byte> Runtime::export_interference_bundle() const {
  return encode_interference_bundle(interference_cache_.exportable());
}

void Runtime::import_interference_bundle(const std::vector<std::byte>& bytes) {
  auto entries = decode_interference_bundle(bytes.data(), bytes.size());
  if (!entries.has_value()) return;  // malformed framing: refuse wholesale
  for (auto& [key, cert] : *entries)
    interference_cache_.insert_unchecked(key, std::move(cert));
}

LaunchResult Runtime::execute_index(const IndexLauncher& launcher) {
  IDXL_REQUIRE(launcher.task < task_registry_.size(), "unknown task id");
  IDXL_REQUIRE(!launcher.domain.empty(), "index launch over an empty domain");
  ProfileScope issue_scope(prof_, ProfCategory::kIssue,
                           prof_ != nullptr ? task_prof_names_[launcher.task]
                                            : Profiler::kNameIssue);

  // Materialize every argument's subregion table before any expansion path
  // resolves points: region ids are assigned at first touch, and the paths
  // below touch subregions in different orders (table-at-once vs per-point).
  // Pinning creation to argument-major table order keeps lazily-created ids
  // identical across replicated issue streams — the distributed runtime
  // ships RegionIds in routing directives, so every rank must agree.
  for (const ProjectedArg& pa : launcher.args)
    forest_->subregion_table(pa.parent, pa.partition);

  LaunchResult result;
  std::shared_ptr<Future::State> collect;
  if (launcher.result_redop != ReductionOp::kNone) {
    collect = std::make_shared<Future::State>();
    collect->op = launcher.result_redop;
    collect->values.assign(static_cast<std::size_t>(launcher.domain.volume()), 0.0);
    result.future.state_ = collect;
  }

  const uint64_t launch_id = next_launch_id_++;
  // See execute(): replicated descriptors assert launch-stream alignment.
  IDXL_REQUIRE(
      !launcher.trace_ctx.valid() || launcher.trace_ctx.launch == launch_id,
      "replicated launch id diverged from the descriptor's trace context");
  result.launch_id = launch_id;
  if (rec_ != nullptr) {
    obs::FlightEvent ev;
    ev.kind = obs::LifecycleEvent::kIssued;
    ev.launch = launch_id;
    rec_->record(ev);
  }

  if (!config_.enable_index_launches) {
    // No-IDX mode: the launch group is issued as individual tasks. Safety
    // is the application's own program order, so no analysis runs.
    expand_as_task_loop(launcher, launch_id, collect);
    return result;
  }

  cells_.runtime_calls.inc();  // one bulk issuance call (§5)

  // A descriptor shipped from a driver may carry an interference-certificate
  // bundle: adopt it (checker-gated, via lookup-time validation) so the group
  // walk can skip pairs the driver already proved disjoint.
  if (!launcher.analysis_bundle.empty()) {
    import_interference_bundle(launcher.analysis_bundle);
  }

  if (launcher.assume_verified) {
    cells_.assumed_verified.inc();
    result.safety.outcome = SafetyOutcome::kSafeUnchecked;
    if (rec_ != nullptr) {
      obs::FlightEvent ev;
      ev.kind = obs::LifecycleEvent::kAnalyzed;
      ev.launch = launch_id;
      ev.detail = obs::LifecycleDetail::kAssumedVerified;
      rec_->record(ev);
    }
  } else if (!replaying_) {
    // Hybrid safety analysis (§3/§4). When replaying a trace the launch was
    // already verified during capture.
    std::vector<CheckArg> check_args;
    check_args.reserve(launcher.args.size());
    for (const ProjectedArg& pa : launcher.args) {
      CheckArg ca;
      ca.functor = &pa.functor;
      ca.color_space = forest_->color_space(pa.partition);
      ca.partition_disjoint = forest_->is_disjoint(pa.partition);
      ca.partition_uid = pa.partition.id;
      ca.collection_uid = forest_->region(pa.parent).tree_id;
      ca.field_mask = field_mask(pa.fields);
      ca.priv = pa.privilege;
      ca.redop = pa.redop;
      check_args.push_back(ca);
    }
    AnalysisOptions options;
    options.enable_dynamic_checks = config_.enable_dynamic_checks;
    options.extended_static = config_.extended_static_analysis;
    options.profiler = prof_;
    if (config_.enable_verdict_cache) options.verdict_cache = &verdict_cache_;
    auto pair_independent = [&](std::size_t i, std::size_t j) {
      return forest_->partitions_independent(launcher.args[i].parent,
                                            launcher.args[i].partition,
                                            launcher.args[j].parent,
                                            launcher.args[j].partition);
    };
    {
      ProfileScope safety_scope(prof_, ProfCategory::kSafety,
                                Profiler::kNameSafetyCheck);
      result.safety = analyze_launch_safety(check_args, launcher.domain, options,
                                            pair_independent);
    }
    cells_.dynamic_check_points.inc(result.safety.dynamic_points);
    if (config_.enable_verdict_cache) {
      if (result.safety.cache_hit)
        cells_.cache_hit_launches.inc();
      else
        cells_.cache_miss_launches.inc();
    }
    if (rec_ != nullptr) {
      obs::FlightEvent ev;
      ev.kind = obs::LifecycleEvent::kAnalyzed;
      ev.launch = launch_id;
      ev.detail = detail_of(result.safety.outcome);
      rec_->record(ev);
    }

    switch (result.safety.outcome) {
      case SafetyOutcome::kSafeStatic: cells_.safe_static.inc(); break;
      case SafetyOutcome::kSafeDynamic: cells_.safe_dynamic.inc(); break;
      case SafetyOutcome::kSafeUnchecked: cells_.safe_unchecked.inc(); break;
      case SafetyOutcome::kUnsafe: {
        cells_.unsafe.inc();
        IDXL_REQUIRE(!config_.strict_unsafe,
                     ("unsafe index launch: " + result.safety.reason).c_str());
        expand_as_task_loop(launcher, launch_id, collect);
        return result;
      }
    }
  }

  // Safe: expand into point tasks. In this in-process executor "expansion"
  // assigns work directly to the scheduler; the distributed pipeline's
  // sharded/sliced distribution is modeled by src/sim.
  result.ran_as_index_launch = true;
  cells_.index_launches.inc();

  if (replaying_) {
    // Replay bypasses both dependence tiers: edges come from the capture.
    const RetryPolicy policy{launcher.max_retries, launcher.retry_backoff_ms,
                             launcher.timeout_ms};
    int64_t rank = 0;
    launcher.domain.for_each([&](const Point& p) {
      issue_point_task(launcher.task, p, launcher.domain, project_args(launcher, p),
                       launcher.scalar_args, launch_id, collect, rank++, policy);
    });
    if (rec_ != nullptr) {
      obs::FlightEvent ev;
      ev.kind = obs::LifecycleEvent::kExpanded;
      ev.launch = launch_id;
      ev.detail = obs::LifecycleDetail::kReplay;
      rec_->record(ev);
    }
    return result;
  }

  // Two-tier dependence analysis (§5): group-level when every argument is
  // analyzable at whole-partition granularity, per-point otherwise.
  const bool group_mode = config_.enable_group_analysis && group_eligible(launcher);
  if (group_mode) {
    cells_.group_launches.inc();
  } else if (config_.enable_group_analysis) {
    cells_.group_fallbacks.inc();
    if (rec_ != nullptr) {
      obs::FlightEvent ev;
      ev.kind = obs::LifecycleEvent::kGroupFallback;
      ev.launch = launch_id;
      rec_->record(ev);
    }
  }
  expand_index_launch(launcher, launch_id, collect, group_mode,
                      result.safety.outcome);
  if (rec_ != nullptr) {
    obs::FlightEvent ev;
    ev.kind = obs::LifecycleEvent::kExpanded;
    ev.launch = launch_id;
    rec_->record(ev);
  }
  return result;
}

/// Per-launch state shared between the issuing thread and the chunk jobs
/// that build point closures on pool workers. Kept alive by shared_ptr from
/// every chunk job and every point closure.
struct Runtime::LaunchArena {
  TaskFn body;  // copied: the registry may grow while workers run
  TaskFnId fn = UINT32_MAX;  // forwarded into TaskContext::fn for hooks
  ArgBuffer scalar;
  Domain launch_domain;
  std::shared_ptr<Future::State> collect;
  /// One prototype table per region argument; slots are filled by the
  /// issuing thread before the chunk jobs reading them are submitted.
  std::vector<std::shared_ptr<ProtoTable>> protos;
  std::size_t n_args = 0;
};

void Runtime::finalize_deps(const TaskNodePtr& node, std::vector<TaskNodePtr>& deps) {
  cells_.dependence_edges.inc(deps.size());
  if (live_enabled_) {
    LiveTask lt;
    lt.label = node->label;
    lt.launch = node->launch;
    lt.deps.reserve(deps.size());
    for (const TaskNodePtr& dep : deps) lt.deps.push_back(dep->seq);
    std::lock_guard<std::mutex> lock(live_mu_);
    live_.emplace(node->seq, std::move(lt));
  }
  if (config_.record_task_graph) {
    graph_nodes_.emplace_back(node->seq, node->label);
    for (const TaskNodePtr& dep : deps) graph_edges_.emplace_back(dep->seq, node->seq);
  }
  if (prof_ != nullptr) {
    std::vector<uint64_t> dep_seqs;
    dep_seqs.reserve(deps.size());
    for (const TaskNodePtr& dep : deps) dep_seqs.push_back(dep->seq);
    prof_->record_edges(node->seq, dep_seqs);
  }
}

void Runtime::capture_trace_step(TaskFnId fn, const Point& point,
                                 std::vector<uint32_t> ispaces,
                                 const std::vector<TaskNodePtr>& deps,
                                 const TaskNodePtr& node) {
  ProfileScope capture_scope(prof_, ProfCategory::kTrace,
                             Profiler::kNameTraceCapture, node->seq);
  TraceStep step;
  step.fn = fn;
  step.point = point;
  step.ispaces = std::move(ispaces);
  for (const TaskNodePtr& d : deps) {
    auto it = trace_index_.find(d.get());
    // Pre-trace dependencies are dropped: traces are fenced, so they are
    // satisfied by construction on replay.
    if (it != trace_index_.end()) step.dep_indices.push_back(it->second);
  }
  active_trace_->steps.push_back(std::move(step));
  trace_index_.emplace(node.get(), static_cast<uint32_t>(trace_nodes_.size()));
  trace_nodes_.push_back(node);
}

void Runtime::expand_index_launch(const IndexLauncher& launcher,
                                  uint64_t launch_id,
                                  const std::shared_ptr<Future::State>& collect,
                                  bool group_mode, SafetyOutcome outcome) {
  const std::size_t n_args = launcher.args.size();

  auto arena = std::make_shared<LaunchArena>();
  arena->body = task_registry_[launcher.task].second;
  arena->fn = launcher.task;
  arena->scalar = launcher.scalar_args;
  arena->launch_domain = launcher.domain;
  arena->collect = collect;
  arena->n_args = n_args;
  arena->protos.reserve(n_args);

  // Per-argument launch plan: everything the per-point loop needs, resolved
  // once. The subregion table memoizes forest lookups per color; prototype
  // PhysicalRegions are filled per color on first touch so chunk jobs never
  // read the forest from worker threads.
  struct ArgPlan {
    const std::vector<RegionId>* table = nullptr;  // subregion by color rank
    const Rect* colors = nullptr;
    const std::vector<FieldId>* fields = nullptr;
    const ProjectionFunctor* functor = nullptr;
    ProtoTable* protos = nullptr;
    std::size_t n_colors = 0;
    uint32_t tree = 0;
    PartitionId partition;
    bool disjoint = false;
    uint64_t mask = 0;
    bool writes = false;
    Privilege priv = Privilege::kRead;
    ReductionOp redop = ReductionOp::kNone;
    bool scan = true;  // group mode: walk the per-color lists at all?
  };
  std::vector<ArgPlan> plans;
  plans.reserve(n_args);
  for (const ProjectedArg& pa : launcher.args) {
    pa.functor.ensure_compiled();
    ArgPlan plan;
    plan.table = &forest_->subregion_table(pa.parent, pa.partition);
    plan.colors = &forest_->color_space(pa.partition);
    plan.fields = &pa.fields;
    plan.functor = &pa.functor;
    plan.n_colors = plan.table->size();
    plan.tree = forest_->region(pa.parent).tree_id;
    plan.partition = pa.partition;
    plan.disjoint = forest_->is_disjoint(pa.partition);
    plan.mask = field_mask(pa.fields);
    plan.writes = privilege_writes(pa.privilege);
    plan.priv = pa.privilege;
    plan.redop = pa.redop;
    const ProtoKey key{pa.parent.id, pa.partition.id, plan.mask, pa.privilege,
                       pa.redop};
    auto [it, inserted] = proto_cache_.try_emplace(key);
    if (inserted) it->second = std::make_shared<ProtoTable>(plan.n_colors);
    arena->protos.push_back(it->second);
    plan.protos = it->second.get();
    plans.push_back(std::move(plan));
  }

  if (group_mode) {
    // Launch-level summary tests: one O(1) field-mask test per argument is
    // the group→group edge discovery (idxl_group_edges_total counts hits).
    // Write arguments always walk their color lists — a safe launch's
    // writers are either injective (one point per color) or commuting
    // reductions that the executor orders serially, and only the list walk
    // chains the latter. Read arguments skip the walk entirely unless a
    // prior (or same-launch) writer could conflict.
    //
    // Inter-launch short-circuit: an argument certified kDisjoint against
    // *every* summary recorded on its tree since the fence skips the walk
    // even when the union-mask summary test fires — the certificate proves
    // the walk would discover nothing (disjoint fields, or image-separated
    // color sets of one disjoint partition). Writer skips additionally
    // require a kSafeStatic/kSafeDynamic launch (injective writers need no
    // ordering among their own points) and a plain write privilege —
    // commuting reductions are ordered serially by the walk, so they never
    // skip. Uncertified skips are impossible: kDisjoint only leaves the
    // analyzer/cache with a CertificateChecker-validated proof.
    const bool pair_analysis = config_.enable_interference_analysis &&
                               (outcome == SafetyOutcome::kSafeStatic ||
                                outcome == SafetyOutcome::kSafeDynamic);
    std::vector<LaunchArgSummary> summaries;
    std::vector<LazyFingerprint> fps;
    if (config_.enable_interference_analysis) {
      summaries.reserve(n_args);
      fps.resize(n_args);  // fingerprints build lazily, on first pair test
      for (std::size_t a = 0; a < n_args; ++a) {
        const ArgPlan& plan = plans[a];
        LaunchArgSummary s;
        s.functor = launcher.args[a].functor;
        s.domain = launcher.domain;
        s.color_space = *plan.colors;
        s.partition_uid = plan.partition.id;
        s.partition_disjoint = plan.disjoint;
        s.collection_uid = plan.tree;
        s.field_mask = plan.mask;
        s.priv = plan.priv;
        s.redop = plan.redop;
        summaries.push_back(std::move(s));
      }
    }
    for (std::size_t a = 0; a < n_args; ++a) {
      ArgPlan& plan = plans[a];
      const bool conflict =
          group_.summary_conflict(plan.tree, plan.mask, plan.writes);
      if (conflict) cells_.group_edges.inc();
      plan.scan = conflict || plan.writes;
      bool same_launch_overlap = false;
      for (std::size_t o = 0; o < n_args; ++o)
        if (o != a && plans[o].tree == plan.tree && (plans[o].mask & plan.mask) &&
            (plans[o].writes || plan.writes))
          same_launch_overlap = true;
      if (!plan.scan && same_launch_overlap) plan.scan = true;
      if (plan.scan && pair_analysis && !same_launch_overlap &&
          plan.priv != Privilege::kReduce &&
          history_certified_disjoint(plan.tree, summaries[a], fps[a])) {
        plan.scan = false;
        cells_.interference_skips.inc();
      }
    }
    // Record this launch's summaries only after every argument was tested —
    // self-pairs are handled by the same-launch overlap test above.
    if (config_.enable_interference_analysis)
      for (std::size_t a = 0; a < n_args; ++a)
        interference_history_.record(plans[a].tree, std::move(summaries[a]),
                                     std::move(fps[a]));
  } else {
    // Per-point mode: any summarized state on the touched trees must be
    // visible to the per-point tracker, and the trees stay per-point until
    // the next fence.
    for (const ArgPlan& plan : plans) {
      materialize_tree(plan.tree);
      group_.mark_per_point(plan.tree);
    }
  }

  ProfileScope dep_scope(prof_, ProfCategory::kDependence,
                         group_mode ? Profiler::kNameGroupDependence
                                    : Profiler::kNameDependence);

  const bool labeling = config_.record_task_graph || live_enabled_;
  const std::string& task_name = task_registry_[launcher.task].first;
  const uint32_t prof_name = prof_ != nullptr ? task_prof_names_[launcher.task] : 0;

  // Per-point kIssued events share one timestamp (read here, on the issuing
  // thread) but are constructed and recorded inside the chunk jobs, from the
  // nodes the chunks already carry — the always-on recorder adds no
  // per-point work to the issue loop's critical path.
  constexpr std::size_t kChunk = 64;
  const uint64_t issue_ts = rec_ != nullptr ? rec_->now_ns() : 0;

  // Chunked deferred expansion: the issuing thread wires dependence edges
  // and holds a "closure guard" on each node's pending count; chunk jobs on
  // pool workers copy the prototype PhysicalRegions, install node->work and
  // release the guard. All chunks of a launch enqueue under one lock
  // (ThreadPool::submit_batch).
  struct ChunkRecord {
    TaskNodePtr node;
    Point point;
    int64_t rank = -1;
  };
  std::vector<ChunkRecord> records;
  std::vector<uint32_t> records_cranks;  // n_args color ranks per record
  std::vector<std::function<void()>> chunk_jobs;
  records.reserve(kChunk);
  records_cranks.reserve(kChunk * n_args);

  auto flush_chunk = [&] {
    if (records.empty()) return;
    chunk_jobs.push_back([this, arena, issue_ts, recs = std::move(records),
                          cranks = std::move(records_cranks)]() mutable {
      ProfileScope chunk_scope(prof_, ProfCategory::kIssue,
                               Profiler::kNameExpandChunk);
      if (rec_ != nullptr) {
        // One pre-stamped batch per chunk; ts-sorted snapshots still show
        // these kIssued events before the tasks' later lifecycle stages.
        std::vector<obs::FlightEvent> issued;
        issued.reserve(recs.size());
        for (const ChunkRecord& rec : recs) {
          obs::FlightEvent ev;
          ev.ts_ns = issue_ts;
          ev.kind = obs::LifecycleEvent::kIssued;
          ev.seq = rec.node->seq;
          ev.launch = rec.node->launch;
          ev.set_point(rec.point.c.data(), rec.point.dim);
          issued.push_back(ev);
        }
        rec_->record_batch(issued);
      }
      const std::size_t args = arena->n_args;
      for (std::size_t i = 0; i < recs.size(); ++i) {
        ChunkRecord& rec = recs[i];
        std::vector<PhysicalRegion> regions;
        regions.reserve(args);
        for (std::size_t a = 0; a < args; ++a)
          regions.push_back(*(*arena->protos[a])[cranks[i * args + a]]);
        if (rec.node->external) {
          // Remote-owned point: instead of the body, install the closure
          // that applies the owner's outcome (written-region bytes + return
          // value) once it arrives. `self` is raw: node_job holds the
          // shared_ptr while this runs, and a shared capture would cycle.
          rec.node->work = [arena, rank = rec.rank, self = rec.node.get(),
                            regions = std::move(regions)]() mutable {
            const RemoteOutcome& o = *self->remote;
            apply_remote_outcome(o, regions);
            if (arena->collect != nullptr) {
              IDXL_ASSERT(rank >= 0 && rank < static_cast<int64_t>(
                                                  arena->collect->values.size()));
              arena->collect->values[static_cast<std::size_t>(rank)] = o.ret;
            }
          };
        } else {
        rec.node->work = [this, arena, point = rec.point, rank = rec.rank,
                          self = rec.node.get(),
                          regions = std::move(regions)]() mutable {
          TaskContext ctx;
          ctx.point = point;
          ctx.launch_domain = arena->launch_domain;
          ctx.fn = arena->fn;
          ctx.scalar_args = &arena->scalar;
          ctx.regions = std::move(regions);
          arena->body(ctx);
          if (arena->collect != nullptr) {
            IDXL_ASSERT(rank >= 0 && rank < static_cast<int64_t>(
                                                arena->collect->values.size()));
            arena->collect->values[static_cast<std::size_t>(rank)] =
                ctx.return_value;
          }
          // Ship the outcome while the mapped regions are still alive.
          if (config_.on_task_success)
            config_.on_task_success(self->seq, self->launch, point, ctx);
        };
        }
        // Release the closure guard; the node may become ready right here
        // when its dependence edges were already satisfied.
        if (rec.node->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          record_ready(*rec.node, obs::FlightEvent::kNone);
          make_ready(rec.node);
        }
      }
    });
    records = {};
    records_cranks = {};
    records.reserve(kChunk);
    records_cranks.reserve(kChunk * n_args);
  };

  std::vector<TaskNodePtr> deps;
  std::vector<std::size_t> point_cranks(n_args);
  int64_t rank = 0;
  try {
    launcher.domain.for_each([&](const Point& p) {
      // Phase 1 — throw-prone resolution, no side effects on trackers:
      // evaluate the (compiled) functors, validate colors, fill prototypes.
      for (std::size_t a = 0; a < n_args; ++a) {
        const ArgPlan& plan = plans[a];
        int64_t buf[kMaxDim] = {};
        plan.functor->eval_into(p, buf);
        Point color;
        color.dim = plan.functor->output_dim();
        for (int d = 0; d < color.dim; ++d) color[d] = buf[d];
        IDXL_REQUIRE(plan.colors->contains(color),
                     "projection functor selected a color outside the partition");
        const auto crank = static_cast<std::size_t>(plan.colors->linearize(color));
        point_cranks[a] = crank;
        std::optional<PhysicalRegion>& slot = (*plan.protos)[crank];
        if (!slot.has_value())
          slot.emplace(*forest_, (*plan.table)[crank], *plan.fields, plan.priv,
                       plan.redop);
      }

      // Phase 2 — no-throw: create the node, wire edges, schedule.
      cells_.point_tasks.inc();
      auto node = std::make_shared<TaskNode>();
      node->seq = next_seq_++;
      node->launch = launch_id;
      node->prof_name = prof_name;
      node->point = p;
      node->max_retries = launcher.max_retries;
      node->backoff_ms = launcher.retry_backoff_ms;
      node->timeout_ms = launcher.timeout_ms;
      if (labeling) node->label = task_name + "@" + p.to_string();

      deps.clear();
      for (std::size_t a = 0; a < n_args; ++a) {
        const ArgPlan& plan = plans[a];
        // While capturing a trace, keep cleanly-completed predecessors in
        // the tracker and record their edges: replay re-executes them
        // concurrently, so "already done" does not order the replayed run.
        const bool capturing = active_trace_ != nullptr;
        if (group_mode) {
          group_.record_point_use(plan.tree, plan.partition, plan.n_colors,
                                  point_cranks[a], plan.mask, plan.writes,
                                  plan.scan, node, deps, capturing);
        } else {
          const RegionInfo& info = forest_->region((*plan.table)[point_cranks[a]]);
          tracker_.record_use(plan.tree, info.ispace, plan.mask, plan.writes,
                              plan.partition, plan.disjoint, node, deps, capturing);
        }
      }
      // Dedupe; drop self-edges (a launch whose arguments alias can surface
      // the node's own earlier-argument use — a self-edge would deadlock).
      std::sort(deps.begin(), deps.end());
      deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
      std::erase(deps, node);

      if (active_trace_ != nullptr) {
        std::vector<uint32_t> ispaces;
        ispaces.reserve(n_args);
        for (std::size_t a = 0; a < n_args; ++a)
          ispaces.push_back(
              forest_->region((*plans[a].table)[point_cranks[a]]).ispace.id);
        capture_trace_step(launcher.task, p, std::move(ispaces), deps, node);
      }
      finalize_deps(node, deps);

      // Closure guard BEFORE register_external: the latter publishes the
      // node to the distributed recv threads, and the closure guard (held
      // until the chunk job installs node->work) keeps an early remote
      // outcome from readying a node that has no closure yet.
      node->pending.fetch_add(1, std::memory_order_relaxed);  // closure guard
      if (config_.point_owned != nullptr &&
          !config_.point_owned(launch_id, p, launcher.domain))
        register_external(node);
      schedule(node, deps);

      records.push_back(ChunkRecord{std::move(node), p, rank++});
      for (std::size_t a = 0; a < n_args; ++a)
        records_cranks.push_back(static_cast<uint32_t>(point_cranks[a]));
      if (records.size() >= kChunk) flush_chunk();
    });
  } catch (...) {
    // Nodes of completed points are scheduled and hold closure guards;
    // their chunks must still run or wait_all would hang. The failing point
    // itself had no side effects (phase 1 throws before phase 2 mutates).
    flush_chunk();
    pool_->submit_batch(std::move(chunk_jobs));
    throw;
  }
  flush_chunk();
  dep_scope.close();
  pool_->submit_batch(std::move(chunk_jobs));
}

const Runtime::RetryPolicy Runtime::kNoRetry{};

void Runtime::issue_point_task(TaskFnId fn, const Point& point,
                               const Domain& launch_domain,
                               const std::vector<RegionArg>& args,
                               const ArgBuffer& scalar_args, uint64_t launch_id,
                               const std::shared_ptr<Future::State>& collect,
                               int64_t rank, const RetryPolicy& policy,
                               bool internal) {
  IDXL_REQUIRE(fn < task_registry_.size(), "unknown task id");
  cells_.point_tasks.inc();

  auto node = std::make_shared<TaskNode>();
  node->seq = next_seq_++;
  node->launch = launch_id;
  node->internal = internal;
  node->label = task_registry_[fn].first + "@" + point.to_string();
  node->prof_name = prof_ != nullptr ? task_prof_names_[fn] : 0;
  node->point = point;
  node->max_retries = policy.retries;
  node->backoff_ms = policy.backoff_ms;
  node->timeout_ms = policy.timeout_ms;
  if (rec_ != nullptr) {
    obs::FlightEvent ev;
    ev.kind = obs::LifecycleEvent::kIssued;
    ev.seq = node->seq;
    ev.launch = launch_id;
    ev.set_point(point.c.data(), point.dim);
    rec_->record(ev);
  }

  // Build the closure now; regions resolve to storage views at execution.
  std::vector<PhysicalRegion> regions;
  regions.reserve(args.size());
  for (const RegionArg& ra : args) {
    IDXL_REQUIRE(ra.region.valid(), "launcher has an invalid region argument");
    regions.emplace_back(*forest_, ra.region, ra.fields, ra.privilege, ra.redop);
  }
  const bool external = config_.point_owned != nullptr &&
                        !config_.point_owned(launch_id, point, launch_domain);
  if (external) {
    // Remote-owned point — apply the owner's outcome instead of the body.
    node->work = [self = node.get(), regions = std::move(regions), collect,
                  rank]() mutable {
      const RemoteOutcome& o = *self->remote;
      apply_remote_outcome(o, regions);
      if (collect != nullptr) {
        IDXL_ASSERT(rank >= 0 &&
                    rank < static_cast<int64_t>(collect->values.size()));
        collect->values[static_cast<std::size_t>(rank)] = o.ret;
      }
    };
  } else {
  const TaskFn& body = task_registry_[fn].second;
  ArgBuffer scalar_copy = scalar_args;
  node->work = [this, body, point, launch_domain, fn, self = node.get(),
                scalar = std::move(scalar_copy), regions = std::move(regions),
                collect, rank]() mutable {
    TaskContext ctx;
    ctx.point = point;
    ctx.launch_domain = launch_domain;
    ctx.fn = fn;
    ctx.scalar_args = &scalar;
    ctx.regions = std::move(regions);
    body(ctx);
    if (collect != nullptr) {
      IDXL_ASSERT(rank >= 0 &&
                  rank < static_cast<int64_t>(collect->values.size()));
      // Each task owns its slot; no synchronization needed beyond the
      // wait_all() barrier in Future::get().
      collect->values[static_cast<std::size_t>(rank)] = ctx.return_value;
    }
    // Ship the outcome while the mapped regions are still alive.
    if (config_.on_task_success)
      config_.on_task_success(self->seq, self->launch, point, ctx);
  };
  }

  // --- dependence discovery: tracker scan, or trace replay ---
  std::vector<TaskNodePtr> deps;
  if (replaying_) {
    ProfileScope replay_scope(prof_, ProfCategory::kTrace,
                              Profiler::kNameTraceReplay, node->seq);
    IDXL_REQUIRE(replay_cursor_ < active_trace_->steps.size(),
                 "trace replay issued more tasks than were captured");
    const TraceStep& step = active_trace_->steps[replay_cursor_];
    IDXL_REQUIRE(step.fn == fn && step.point == point,
                 "trace replay diverged from the captured task sequence");
    for (std::size_t i = 0; i < args.size(); ++i) {
      const RegionInfo& info = forest_->region(args[i].region);
      IDXL_REQUIRE(i < step.ispaces.size() && step.ispaces[i] == info.ispace.id,
                   "trace replay diverged in region arguments");
    }
    for (uint32_t dep_idx : step.dep_indices) deps.push_back(trace_nodes_[dep_idx]);
    ++replay_cursor_;
    cells_.traced_replayed.inc();
    trace_nodes_.push_back(node);
  } else {
    {
      ProfileScope dep_scope(prof_, ProfCategory::kDependence,
                             Profiler::kNameDependence, node->seq);
      for (const RegionArg& ra : args) {
        const RegionInfo& info = forest_->region(ra.region);
        // A per-point use makes any group summary of this tree stale: flush
        // it first, and keep the tree per-point until the next fence.
        materialize_tree(info.tree_id);
        group_.mark_per_point(info.tree_id);
        const bool through_disjoint =
            info.through.valid() && forest_->is_disjoint(info.through);
        tracker_.record_use(info.tree_id, info.ispace, field_mask(ra.fields),
                            privilege_writes(ra.privilege), info.through,
                            through_disjoint, node, deps,
                            /*keep_done=*/active_trace_ != nullptr);
      }
      // Dedupe (one arg pair can surface the same predecessor repeatedly);
      // drop self-edges from aliasing argument pairs.
      std::sort(deps.begin(), deps.end());
      deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
      std::erase(deps, node);
    }

    if (active_trace_ != nullptr)
      capture_trace_step(fn, point,
                         [&] {
                           std::vector<uint32_t> ispaces;
                           ispaces.reserve(args.size());
                           for (const RegionArg& ra : args)
                             ispaces.push_back(forest_->region(ra.region).ispace.id);
                           return ispaces;
                         }(),
                         deps, node);
  }

  finalize_deps(node, deps);
  if (external) {
    // Registration guard: keeps a racing complete_external() from readying
    // the node before schedule() has wired it into the graph.
    node->pending.fetch_add(1, std::memory_order_relaxed);
    register_external(node);
  }
  schedule(node, deps);
  if (external &&
      node->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    record_ready(*node, obs::FlightEvent::kNone);
    make_ready(node);
  }
}

std::string Runtime::export_task_graph_dot() const {
  IDXL_REQUIRE(config_.record_task_graph,
               "enable RuntimeConfig::record_task_graph to export the graph");
  // Pre-size the output and append in place: the old chained operator+
  // version built several temporaries per line, and reallocation churn made
  // large graphs painfully slow to export.
  std::size_t size = 64;
  for (const auto& [seq, label] : graph_nodes_) size += label.size() + 32;
  size += graph_edges_.size() * 32;
  std::string dot;
  dot.reserve(size);
  dot += "digraph tasks {\n  rankdir=TB;\n  node [shape=box];\n";
  char buf[24];
  auto append_num = [&](uint64_t v) {
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    (void)ec;
    dot.append(buf, end);
  };
  for (const auto& [seq, label] : graph_nodes_) {
    dot += "  t";
    append_num(seq);
    dot += " [label=\"";
    dot += label;
    dot += "\"];\n";
  }
  for (const auto& [from, to] : graph_edges_) {
    dot += "  t";
    append_num(from);
    dot += " -> t";
    append_num(to);
    dot += ";\n";
  }
  dot += "}\n";
  return dot;
}

void Runtime::schedule(const TaskNodePtr& node, const std::vector<TaskNodePtr>& deps) {
  // `pending` starts at 1 (issue guard); each live predecessor adds one.
  // The increment must happen *before* the edge is published: a dependency
  // can complete and decrement the instant add_successor releases its lock,
  // and must never observe a count our side hasn't raised yet (double-ready).
  for (const TaskNodePtr& dep : deps) {
    node->pending.fetch_add(1, std::memory_order_relaxed);
    if (!dep->add_successor(node)) {
      // Already complete: the edge is trivially satisfied — but a faulted
      // dep's poison must still flow, since its fan-out already happened.
      inherit_poison(*dep, *node);
      node->pending.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  if (node->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Readied by the issuing thread itself — no completion edge to name.
    record_ready(*node, obs::FlightEvent::kNone);
    make_ready(node);
  }
}

std::function<void()> Runtime::node_job(TaskNodePtr node) {
  // `ready_ns` is taken here — the moment every dependence was satisfied —
  // so the recorded queue wait is pure scheduler latency. The profiler and
  // the flight recorder share one timebase, so a single pair of clock reads
  // serves both.
  const bool timed = prof_ != nullptr || rec_ != nullptr;
  const uint64_t ready_ns = timed ? recorder_.now_ns() : 0;
  return [this, node = std::move(node), ready_ns, timed] {
    // --- external (remote-owned) node: apply the owner's outcome ---
    // The local fault gates and the injection plan deliberately do NOT run
    // here: the owner already made those decisions, and determinism across
    // processes requires every rank to record the owner's verdict verbatim
    // (a poisoned remote point arrives as a kPoisoned outcome).
    if (node->external) {
      const RemoteOutcome& o = *node->remote;
      if (o.kind != FaultKind::kNone) {
        finish_fault(node, o.kind, o.root, o.attempts, o.message);
        return;
      }
      try {
        node->work();
      } catch (const std::exception& e) {
        finish_fault(node, FaultKind::kException, node->seq, 1, e.what());
        return;
      }
      cells_.tasks_completed.inc();
      if (live_enabled_) {
        std::lock_guard<std::mutex> lock(live_mu_);
        live_.erase(node->seq);
      }
      node->work = nullptr;
      node->remote.reset();
      fan_out(node, obs::FlightEvent::kNone);
      return;
    }

    // --- fault gates: settle without running the body ---
    const uint64_t proot = node->poison_root.load(std::memory_order_acquire);
    if (proot != UINT64_MAX) {
      finish_fault(node, FaultKind::kPoisoned, proot, 0, {});
      return;
    }
    if (cancel_all_.load(std::memory_order_acquire) ||
        node->cancel_flag.load(std::memory_order_acquire)) {
      finish_fault(node, FaultKind::kCancelled, node->seq, 0,
                   "cancelled before start");
      return;
    }

    // --- execute one attempt ---
    FaultKind fk = FaultKind::kNone;
    std::string msg;
    if (fault_plan_ != nullptr &&
        fault_plan_->should_fail(node->launch, node->point, node->attempt)) {
      cells_.fault_injections.inc();
      fk = FaultKind::kInjected;
      msg = "injected fault";
    } else {
      uint64_t timer = 0;
      if (node->timeout_ms > 0) {
        // The timer fires on the pool's timer thread (never a worker), so a
        // timeout lands even when every worker is stuck; the shared_ptr
        // capture keeps the node alive if the task wins the race.
        timer = pool_->submit_after(
            [n = node] {
              n->timed_out.store(true, std::memory_order_release);
              n->cancel_flag.store(true, std::memory_order_release);
            },
            node->timeout_ms);
      }
      const uint64_t start_ns = timed ? recorder_.now_ns() : 0;
      try {
        FaultFrameScope frame(
            FaultFrame{&node->cancel_flag, &cancel_all_, node->attempt});
        node->work();
      } catch (const TaskCancelled&) {
        fk = node->timed_out.load(std::memory_order_acquire) ? FaultKind::kTimeout
                                                             : FaultKind::kCancelled;
        msg = fk == FaultKind::kTimeout ? "timed out" : "cancelled";
      } catch (const TaskFailure& e) {
        fk = FaultKind::kExplicit;
        msg = e.what();
      } catch (const std::exception& e) {
        fk = FaultKind::kException;
        msg = e.what();
      } catch (...) {
        fk = FaultKind::kException;
        msg = "unknown exception";
      }
      if (timer != 0) pool_->cancel_timer(timer);
      if (fk == FaultKind::kNone && timed) {
        const uint64_t end_ns = recorder_.now_ns();
        if (prof_ != nullptr)
          prof_->record(ProfCategory::kTask, node->prof_name, start_ns, end_ns,
                        node->seq, start_ns - ready_ns, node->launch);
        if (rec_ != nullptr) {
          obs::FlightEvent run;
          run.ts_ns = start_ns;
          run.kind = obs::LifecycleEvent::kRunning;
          run.seq = node->seq;
          run.launch = node->launch;
          obs::FlightEvent done = run;
          done.ts_ns = end_ns;
          done.kind = obs::LifecycleEvent::kComplete;
          rec_->record2(run, done);
        }
        cells_.task_duration.observe(end_ns - start_ns);
        cells_.queue_wait.observe(start_ns - ready_ns);
      }
    }

    if (fk == FaultKind::kNone) {
      if (node->attempt > 0) cells_.retry_succeeded.inc();
      cells_.tasks_completed.inc();
      if (live_enabled_) {
        std::lock_guard<std::mutex> lock(live_mu_);
        live_.erase(node->seq);
      }
      node->work = nullptr;  // release captured resources promptly
      fan_out(node, obs::FlightEvent::kNone);
      return;
    }

    // --- failed attempt: retry under the launch policy, or settle ---
    const bool retryable = fk == FaultKind::kException ||
                           fk == FaultKind::kExplicit || fk == FaultKind::kInjected;
    if (retryable && node->attempt < node->max_retries) {
      ++node->attempt;  // the executing worker owns this field
      cells_.retry_attempts.inc();
      if (rec_ != nullptr) {
        obs::FlightEvent ev;
        ev.kind = obs::LifecycleEvent::kRetry;
        ev.seq = node->seq;
        ev.launch = node->launch;
        ev.edge = node->attempt;  // attempt number about to run
        ev.detail = detail_of(fk);
        ev.set_point(node->point.c.data(), node->point.dim);
        rec_->record(ev);
      }
      // Exponential backoff: backoff_ms, 2*backoff_ms, 4*backoff_ms, ...
      const uint64_t delay =
          node->backoff_ms == 0
              ? 0
              : static_cast<uint64_t>(node->backoff_ms) << (node->attempt - 1);
      if (delay == 0) {
        pool_->submit(node_job(node));
      } else {
        // The pending timer holds the pool open (wait_idle waits for it).
        pool_->submit_after(
            [this, n = node]() mutable { pool_->submit(node_job(std::move(n))); },
            delay);
      }
      return;
    }
    finish_fault(node, fk, node->seq, node->attempt + 1, std::move(msg));
  };
}

void Runtime::finish_fault(const TaskNodePtr& node, FaultKind kind, uint64_t root,
                           uint32_t attempts, std::string message) {
  node->fault.store(static_cast<uint8_t>(kind), std::memory_order_release);
  // Publish the root for late edges (inherit_poison) before complete() —
  // by now every predecessor has fanned out, so no store can race this.
  node->poison_root.store(root, std::memory_order_release);

  TaskFault fault;
  fault.seq = node->seq;
  fault.launch = node->launch;
  fault.point = node->point;
  fault.attempts = attempts;
  fault.kind = kind;
  fault.root = root;
  fault.message = std::move(message);
  // Broadcast owned terminal outcomes (external nodes' faults came FROM the
  // owner; re-broadcasting would echo forever). Runtime-generated helper
  // tasks (delta transfers) still broadcast — every rank must poison the
  // same downstream set — but stay out of the user-facing FaultReport so
  // reports compare equal across data-plane configurations.
  if (config_.on_task_fault && !node->external) config_.on_task_fault(fault);
  if (!node->internal) faults_.record(std::move(fault));

  if (kind == FaultKind::kPoisoned)
    cells_.fault_poisoned.inc();
  else
    fault_cell(kind).inc();

  if (rec_ != nullptr) {
    obs::FlightEvent ev;
    ev.kind = kind == FaultKind::kPoisoned    ? obs::LifecycleEvent::kPoisoned
              : kind == FaultKind::kCancelled ? obs::LifecycleEvent::kCancelled
                                              : obs::LifecycleEvent::kFailed;
    ev.seq = node->seq;
    ev.launch = node->launch;
    ev.detail = detail_of(kind);
    if (kind == FaultKind::kPoisoned) ev.edge = root;  // the culprit
    ev.set_point(node->point.c.data(), node->point.dim);
    rec_->record(ev);
  }

  // A settled task is progress: terminal faults count toward the completed
  // counter so pending drains to zero (no false watchdog stalls, fences
  // return). stats().tasks_failed/"poisoned" break the composition out.
  cells_.tasks_completed.inc();
  if (live_enabled_) {
    std::lock_guard<std::mutex> lock(live_mu_);
    live_.erase(node->seq);
  }
  node->work = nullptr;
  fan_out(node, root);
}

void Runtime::fan_out(const TaskNodePtr& node, uint64_t poison) {
  // Fan out to every successor this completion readied, in one batch.
  std::vector<TaskNodePtr> ready;
  for (const TaskNodePtr& succ : node->complete()) {
    if (poison != obs::FlightEvent::kNone) {
      // Atomic-min CAS: a successor's poison root settles to the smallest
      // failed-ancestor seq. All marking happens before the successor's
      // pending count reaches zero, so the value is deterministic whatever
      // order the predecessors completed in.
      uint64_t cur = succ->poison_root.load(std::memory_order_relaxed);
      while (poison < cur && !succ->poison_root.compare_exchange_weak(
                                 cur, poison, std::memory_order_acq_rel)) {
      }
    }
    if (succ->pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
      ready.push_back(succ);
  }
  if (rec_ != nullptr && !ready.empty()) {
    // This completion was the last unblocker of every task in `ready`:
    // the waits-for edge the stall report names is (succ <- node).
    std::vector<obs::FlightEvent> events;
    events.reserve(ready.size());
    const uint64_t ts = recorder_.now_ns();
    for (const TaskNodePtr& succ : ready) {
      obs::FlightEvent ev;
      ev.ts_ns = ts;
      ev.kind = obs::LifecycleEvent::kReady;
      ev.seq = succ->seq;
      ev.launch = succ->launch;
      ev.edge = node->seq;
      events.push_back(ev);
    }
    rec_->record_batch(events);
  }
  if (ready.size() == 1) {
    make_ready(ready.front());
  } else if (!ready.empty()) {
    std::vector<std::function<void()>> jobs;
    jobs.reserve(ready.size());
    for (TaskNodePtr& succ : ready) jobs.push_back(node_job(std::move(succ)));
    pool_->submit_batch(std::move(jobs));
  }
}

void Runtime::make_ready(const TaskNodePtr& node) { pool_->submit(node_job(node)); }

void Runtime::begin_trace(uint32_t trace_id) {
  IDXL_REQUIRE(active_trace_ == nullptr, "traces cannot nest");
  wait_all();
  tracker_.reset();  // the fence makes prior state irrelevant
  group_.reset();
  interference_history_.clear();
  Trace& trace = traces_[trace_id];
  if (rec_ != nullptr) {
    obs::FlightEvent ev;
    ev.kind = obs::LifecycleEvent::kTraceBegin;
    if (trace.captured) ev.detail = obs::LifecycleDetail::kReplay;
    rec_->record(ev);
  }
  active_trace_ = &trace;
  replaying_ = trace.captured;
  replay_cursor_ = 0;
  trace_nodes_.clear();
  trace_index_.clear();
  // Faults recorded between here and end_trace invalidate the trace: a
  // capture containing a failed step must not be replayed (the poisoned
  // closure never ran, so its dependence record is not the real program's).
  trace_fault_epoch_ = faults_.epoch();
}

void Runtime::end_trace(uint32_t trace_id) {
  IDXL_REQUIRE(active_trace_ == &traces_[trace_id], "end_trace without begin_trace");
  // Quiesce before validating: every fault a traced task will ever produce
  // is in the log once the fence returns (the trackers are reset below,
  // after the trace bookkeeping — wait_all skips them mid-trace).
  wait_all();
  const bool faulted = faults_.epoch() != trace_fault_epoch_;
  if (replaying_) {
    IDXL_REQUIRE(replay_cursor_ == active_trace_->steps.size(),
                 "trace replay issued fewer tasks than were captured");
    if (faulted) {
      // The replayed execution failed: drop the capture so the next
      // begin_trace re-captures against the (possibly changed) program.
      active_trace_->captured = false;
      active_trace_->steps.clear();
    }
  } else if (faulted) {
    // A trace containing a failed step is invalidated, not replayed: the
    // poisoned closure never executed, so the captured dependence record
    // does not describe a successful run. Next begin_trace re-captures.
    active_trace_->captured = false;
    active_trace_->steps.clear();
  } else {
    active_trace_->captured = true;
  }
  active_trace_ = nullptr;
  replaying_ = false;
  trace_nodes_.clear();
  trace_index_.clear();
  if (rec_ != nullptr) {
    obs::FlightEvent ev;
    ev.kind = obs::LifecycleEvent::kTraceEnd;
    rec_->record(ev);
  }
  tracker_.reset();
  group_.reset();
  interference_history_.clear();
}

TaskFnId Runtime::fill_task() {
  if (fill_task_ == UINT32_MAX) {
    fill_task_ = register_task("idxl_fill", [](TaskContext& ctx) {
      const auto& args = ctx.arg<FillArgs>();
      ctx.region(0).fill_bytes(args.field, args.pattern, args.size);
    });
  }
  return fill_task_;
}

void Runtime::register_external(const TaskNodePtr& node) {
  node->external = true;
  node->pending.fetch_add(1, std::memory_order_relaxed);  // remote guard
  std::optional<RemoteOutcome> early;
  {
    std::lock_guard<std::mutex> lock(ext_mu_);
    auto it = early_outcomes_.find(node->seq);
    if (it != early_outcomes_.end()) {
      early = std::move(it->second);
      early_outcomes_.erase(it);
    } else {
      externals_.emplace(node->seq, node);
    }
  }
  // A forwarded outcome can overtake the launch frame that issues its node;
  // apply the buffered one here. Releasing the remote guard is safe — the
  // caller still holds a closure/registration guard, so the node cannot
  // become ready under us.
  if (early.has_value()) {
    node->remote = std::make_unique<RemoteOutcome>(std::move(*early));
    node->pending.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Runtime::complete_external(uint64_t seq, RemoteOutcome outcome) {
  TaskNodePtr node;
  {
    std::lock_guard<std::mutex> lock(ext_mu_);
    auto it = externals_.find(seq);
    if (it == externals_.end()) {
      // Outcome beat the launch frame (or `seq` is owned here and this is a
      // stray echo — the protocol never sends those). Buffer for issue time.
      early_outcomes_.emplace(seq, std::move(outcome));
      return;
    }
    node = it->second;
  }
  deliver_external(node, std::move(outcome));
  {
    // Erase only after delivery: wait_all observing externals_ empty must
    // imply every outcome's pool job (if any) was already submitted.
    std::lock_guard<std::mutex> lock(ext_mu_);
    externals_.erase(seq);
  }
  ext_cv_.notify_all();
}

std::vector<std::pair<uint64_t, std::string>> Runtime::pending_externals()
    const {
  std::vector<std::pair<uint64_t, std::string>> out;
  std::lock_guard<std::mutex> lock(ext_mu_);
  out.reserve(externals_.size());
  for (const auto& [seq, node] : externals_) out.emplace_back(seq, node->label);
  return out;
}

void Runtime::abandon_externals(const std::string& why) {
  for (;;) {
    uint64_t seq;
    {
      std::lock_guard<std::mutex> lock(ext_mu_);
      if (externals_.empty()) return;
      seq = externals_.begin()->first;
    }
    RemoteOutcome o;
    o.kind = FaultKind::kCancelled;
    o.root = seq;
    o.attempts = 0;
    o.message = why;
    complete_external(seq, std::move(o));
  }
}

void Runtime::deliver_external(const TaskNodePtr& node, RemoteOutcome outcome) {
  node->remote = std::make_unique<RemoteOutcome>(std::move(outcome));
  if (node->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    record_ready(*node, obs::FlightEvent::kNone);
    make_ready(node);
  }
}

void Runtime::fill_bytes_region(RegionId r, FieldId f, const void* pattern,
                                std::size_t size) {
  FillArgs args{};
  IDXL_REQUIRE(size > 0 && size <= sizeof(args.pattern),
               "fill pattern too large");
  IDXL_REQUIRE(forest_->field(forest_->region(r).fspace, f).size == size,
               "fill value type does not match the field size");
  args.field = f;
  args.size = size;
  std::memcpy(args.pattern, pattern, size);
  TaskLauncher launcher;
  launcher.task = fill_task();
  launcher.scalar_args = ArgBuffer::of(args);
  launcher.args = {{r, {f}, Privilege::kWrite, ReductionOp::kNone}};
  execute(launcher);
}

void Runtime::wait_all() {
  ProfileScope wait_scope(prof_, ProfCategory::kRuntime, Profiler::kNameWaitAll);
  // External nodes first: their pool jobs exist only once the owning process
  // delivers an outcome, so an idle pool does not imply quiescence. The recv
  // threads only ever *remove* entries (externals are registered by this —
  // the issuing — thread), so once empty the set stays empty.
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(ext_mu_);
      ext_cv_.wait(lk, [&] { return externals_.empty(); });
    }
    pool_->wait_idle();
    std::lock_guard<std::mutex> lock(ext_mu_);
    if (externals_.empty()) break;
  }
  if (rec_ != nullptr) {
    obs::FlightEvent ev;
    ev.kind = obs::LifecycleEvent::kFence;
    rec_->record(ev);
  }
  // First-responder dump: a quiesce that surfaces new failures writes the
  // stall-report bundle (waits-for graph is empty here, but the recorder
  // tail and metrics capture the run-up) to stderr before anyone asks.
  // Opt out with IDXL_DUMP_ON_FAULT=0; read per call so tests can toggle.
  if (env_flag("IDXL_DUMP_ON_FAULT", true)) {
    const FaultReport report = faults_.report();
    const uint64_t total = report.failures.size() + report.poisoned.size();
    if (total != 0 && total != last_fault_dump_count_) {
      last_fault_dump_count_ = total;
      std::fputs("idxl: fence observed new task faults (", stderr);
      std::fprintf(stderr, "%zu failures, %zu poisoned); dumping state\n",
                   report.failures.size(), report.poisoned.size());
      std::fputs(stall_report().to_string().c_str(), stderr);
    }
  }
  if (active_trace_ == nullptr) {
    // Quiescence is a natural fence: every recorded task has completed, so
    // both dependence tiers can drop their state. Trees that were
    // summarized or contaminated mid-run become group-analyzable again.
    tracker_.reset();
    group_.reset();
    interference_history_.clear();
  }
}

double Future::get(Runtime& rt) const {
  IDXL_REQUIRE(valid(), "get() on an empty Future");
  rt.wait_all();
  ProfileScope reduce_scope(rt.prof_, ProfCategory::kReduce,
                            Profiler::kNameFutureReduce);
  IDXL_ASSERT(!state_->values.empty());
  double acc = state_->values.front();
  for (std::size_t i = 1; i < state_->values.size(); ++i)
    acc = apply_reduction(state_->op, acc, state_->values[i]);
  return acc;
}

}  // namespace idxl
