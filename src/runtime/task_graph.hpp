#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace idxl {

/// One executable task instance in the real executor's dependence graph.
/// Edges are discovered at issue time by the DependenceTracker; a node is
/// handed to the thread pool once every predecessor has completed.
struct TaskNode {
  uint64_t seq = 0;            ///< global program-order sequence number
  /// Id of the launch this task expanded from — the cross-link key shared
  /// by the flight recorder and the Chrome-trace export.
  uint64_t launch = UINT64_MAX;
  std::string label;           ///< "taskname@(point)" for diagnostics
  uint32_t prof_name = 0;      ///< interned task name for profiling events
  std::function<void()> work;
  /// Executing shard in sharded (DCR) mode; completion hands ready
  /// successors to pools_[successor->owner]. Unused by the single runtime.
  std::atomic<uint32_t> owner{0};

  /// Pending predecessor count plus one "issue guard" held while edges are
  /// still being added; the node becomes ready when this reaches zero.
  std::atomic<int64_t> pending{1};
  std::atomic<bool> done{false};

  std::mutex mu;                                   // guards successors
  std::vector<std::shared_ptr<TaskNode>> successors;

  /// Register `succ` as a successor. Returns false (and adds nothing) when
  /// this node already completed — the dependence is then trivially
  /// satisfied.
  bool add_successor(const std::shared_ptr<TaskNode>& succ) {
    std::lock_guard<std::mutex> lock(mu);
    if (done.load(std::memory_order_acquire)) return false;
    successors.push_back(succ);
    return true;
  }

  /// Mark complete and return the successors to notify.
  std::vector<std::shared_ptr<TaskNode>> complete() {
    std::lock_guard<std::mutex> lock(mu);
    done.store(true, std::memory_order_release);
    return std::move(successors);
  }
};

using TaskNodePtr = std::shared_ptr<TaskNode>;

}  // namespace idxl
