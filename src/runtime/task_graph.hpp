#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "region/point.hpp"
#include "runtime/fault.hpp"

namespace idxl {

/// The terminal state of a task that executed in another process, delivered
/// through Runtime::complete_external(). A healthy outcome (kind == kNone)
/// carries the owner's written region bytes and return value; a faulted one
/// carries the exact TaskFault ingredients so every rank records the
/// identical fault and propagates the identical poison closure.
/// One rectangular slice of remote region data: applied to write-privilege
/// region argument `arg` via PhysicalRegion::copy_in_rect. The delta-sized
/// unit of the distributed data plane (full-block outcomes use region_bytes
/// instead).
struct RegionPatch {
  uint32_t arg = 0;    ///< index into the task's region arguments
  uint32_t field = 0;  ///< FieldId of the patched field
  Rect rect;  ///< row-major payload layout over this rect
  std::vector<std::byte> bytes;
};

struct RemoteOutcome {
  FaultKind kind = FaultKind::kNone;
  uint64_t root = UINT64_MAX;  ///< root-cause seq (fault outcomes)
  uint32_t attempts = 0;
  std::string message;
  double ret = 0.0;  ///< TaskContext::return_value of the remote body
  /// False for slim delta-mode outcomes: the completing rank applies
  /// `patches` (possibly none — most ranks stay intentionally stale) and
  /// must not expect region_bytes to cover the written arguments.
  bool has_data = true;
  /// Written-region bytes in argument order (write-privilege args only),
  /// extracted by PhysicalRegion::copy_out on the owner and applied by
  /// copy_in here. Meaningful only when has_data.
  std::vector<std::byte> region_bytes;
  /// Delta-mode payload: rect-sized slices for this rank alone.
  std::vector<RegionPatch> patches;
};

/// One executable task instance in the real executor's dependence graph.
/// Edges are discovered at issue time by the DependenceTracker; a node is
/// handed to the thread pool once every predecessor has completed.
struct TaskNode {
  uint64_t seq = 0;            ///< global program-order sequence number
  /// Id of the launch this task expanded from — the cross-link key shared
  /// by the flight recorder and the Chrome-trace export.
  uint64_t launch = UINT64_MAX;
  std::string label;           ///< "taskname@(point)" for diagnostics
  uint32_t prof_name = 0;      ///< interned task name for profiling events
  std::function<void()> work;
  /// Executing shard in sharded (DCR) mode; completion hands ready
  /// successors to pools_[successor->owner]. Unused by the single runtime.
  std::atomic<uint32_t> owner{0};

  /// Pending predecessor count plus one "issue guard" held while edges are
  /// still being added; the node becomes ready when this reaches zero.
  std::atomic<int64_t> pending{1};
  std::atomic<bool> done{false};

  /// Launch-domain point this task executes (dim 0 means "not an index
  /// point": single-task launches report Point::p1(0)).
  Point point = Point::p1(0);

  // --- fault state -------------------------------------------------------
  /// Terminal FaultKind once the node fails or is poisoned; written exactly
  /// once, before complete(), by the executing/poisoning worker.
  std::atomic<uint8_t> fault{0};
  /// Seq of the root-cause failure poisoning this node. Predecessors race to
  /// atomic-min this before decrementing `pending`, so by the time the node
  /// runs the value is the minimum failed ancestor seq — deterministic for a
  /// fixed dependence graph. UINT64_MAX means healthy.
  std::atomic<uint64_t> poison_root{UINT64_MAX};
  /// Cooperative-cancellation flag: set by the timeout timer or the
  /// watchdog's cancel action, observed via TaskContext::cancelled().
  std::atomic<bool> cancel_flag{false};
  std::atomic<bool> timed_out{false};

  // --- external (remote-owned) state ------------------------------------
  /// True when another process owns this point: the node is a placeholder in
  /// the dependence graph whose outcome arrives via complete_external(). An
  /// extra "remote guard" on `pending` keeps it from running until then.
  bool external = false;
  /// Runtime-generated helper task (delta transfer): full dependence/poison
  /// semantics, but finish_fault keeps it out of the FaultReport so reports
  /// stay comparable across data-plane configurations.
  bool internal = false;
  /// The delivered outcome; written before the remote guard is released, so
  /// node_job reads it without locking.
  std::unique_ptr<RemoteOutcome> remote;

  // Retry policy, copied from the launcher at issue time (immutable after).
  uint32_t max_retries = 0;
  uint32_t backoff_ms = 0;
  uint32_t timeout_ms = 0;
  /// Attempt counter; only the (single) executing worker mutates it.
  uint32_t attempt = 0;

  FaultKind fault_kind() const {
    return static_cast<FaultKind>(fault.load(std::memory_order_acquire));
  }

  std::mutex mu;                                   // guards successors
  std::vector<std::shared_ptr<TaskNode>> successors;

  /// Register `succ` as a successor. Returns false (and adds nothing) when
  /// this node already completed — the dependence is then trivially
  /// satisfied.
  bool add_successor(const std::shared_ptr<TaskNode>& succ) {
    std::lock_guard<std::mutex> lock(mu);
    if (done.load(std::memory_order_acquire)) return false;
    successors.push_back(succ);
    return true;
  }

  /// Mark complete and return the successors to notify.
  std::vector<std::shared_ptr<TaskNode>> complete() {
    std::lock_guard<std::mutex> lock(mu);
    done.store(true, std::memory_order_release);
    return std::move(successors);
  }
};

using TaskNodePtr = std::shared_ptr<TaskNode>;

/// Late-edge poison inheritance: when add_successor() finds `dep` already
/// complete, dep's fan-out can no longer reach `node`, so a faulted dep's
/// root must be copied over here (atomic-min, same rule as fan-out). The
/// done=true read under dep's mutex orders dep's fault/poison_root stores
/// (both precede complete()) before these loads.
inline void inherit_poison(const TaskNode& dep, TaskNode& node) {
  if (dep.fault_kind() == FaultKind::kNone) return;
  const uint64_t root = dep.poison_root.load(std::memory_order_acquire);
  if (root == UINT64_MAX) return;
  uint64_t cur = node.poison_root.load(std::memory_order_relaxed);
  while (root < cur && !node.poison_root.compare_exchange_weak(
                           cur, root, std::memory_order_acq_rel))
    ;
}

}  // namespace idxl
