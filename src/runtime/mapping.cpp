#include "runtime/mapping.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace idxl {

namespace {

/// Position of `p` in the row-major enumeration of `domain`.
int64_t linear_index(const Domain& domain, const Point& p) {
  return domain.linear_index(p);
}

}  // namespace

std::vector<Point> ShardingFunctor::local_points(const Domain& domain,
                                                 uint32_t shard_id,
                                                 uint32_t total_shards) const {
  std::vector<Point> result;
  domain.for_each([&](const Point& p) {
    if (shard(p, domain, total_shards) == shard_id) result.push_back(p);
  });
  return result;
}

uint32_t BlockShardingFunctor::shard(const Point& p, const Domain& domain,
                                     uint32_t total_shards) const {
  IDXL_ASSERT(total_shards > 0);
  const int64_t volume = domain.volume();
  const int64_t idx = linear_index(domain, p);
  // Node k owns ceil-balanced contiguous chunk k.
  return static_cast<uint32_t>((idx * total_shards) / volume);
}

uint32_t CyclicShardingFunctor::shard(const Point& p, const Domain& domain,
                                      uint32_t total_shards) const {
  IDXL_ASSERT(total_shards > 0);
  return static_cast<uint32_t>(linear_index(domain, p) % total_shards);
}

std::vector<Slice> BinarySlicingFunctor::slice(const Slice& s) const {
  if (s.node_count() <= 1 || s.domain.volume() <= 1) return {s};

  const uint32_t mid_nodes = s.node_lo + s.node_count() / 2;  // first node of right half
  Slice left, right;
  left.node_lo = s.node_lo;
  left.node_hi = mid_nodes - 1;
  right.node_lo = mid_nodes;
  right.node_hi = s.node_hi;

  if (s.domain.dense()) {
    // Split along the longest axis, proportionally to the node split so the
    // tree stays balanced for non-power-of-two node counts.
    const Rect& b = s.domain.bounds();
    int axis = 0;
    int64_t best = -1;
    for (int d = 0; d < b.dim(); ++d) {
      const int64_t extent = b.hi[d] - b.lo[d] + 1;
      if (extent > best) {
        best = extent;
        axis = d;
      }
    }
    const int64_t extent = b.hi[axis] - b.lo[axis] + 1;
    int64_t left_len = extent * (mid_nodes - s.node_lo) / s.node_count();
    left_len = std::clamp<int64_t>(left_len, 1, extent - 1);
    Rect lb = b, rb = b;
    lb.hi[axis] = b.lo[axis] + left_len - 1;
    rb.lo[axis] = b.lo[axis] + left_len;
    left.domain = Domain(lb);
    right.domain = Domain(rb);
  } else {
    auto pts = s.domain.points();
    const std::size_t cut =
        pts.size() * (mid_nodes - s.node_lo) / s.node_count();
    std::vector<Point> lp(pts.begin(), pts.begin() + static_cast<std::ptrdiff_t>(cut));
    std::vector<Point> rp(pts.begin() + static_cast<std::ptrdiff_t>(cut), pts.end());
    if (lp.empty() || rp.empty()) return {s};
    left.domain = Domain::from_points(std::move(lp));
    right.domain = Domain::from_points(std::move(rp));
  }
  return {left, right};
}

}  // namespace idxl
