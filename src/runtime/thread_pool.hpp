#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace idxl {

/// Minimal work queue backing the real (in-process) executor. Tasks are
/// opaque closures; dependence ordering is handled above this layer (the
/// pool only ever sees *ready* tasks).
class ThreadPool {
 public:
  /// `worker_id_base` offsets the ids this pool's workers report through
  /// prof_current_worker(), so profiles from multi-pool runtimes (one pool
  /// per shard) keep globally distinct worker lanes.
  explicit ThreadPool(unsigned workers, int worker_id_base = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a ready task.
  void submit(std::function<void()> fn);

  /// Enqueue a batch of ready tasks under a single lock acquisition, waking
  /// at most one worker per task (all workers when the batch saturates the
  /// pool). Issuing an index launch's expansion chunks this way costs one
  /// mutex round-trip per launch instead of one per chunk.
  void submit_batch(std::vector<std::function<void()>> fns);

  /// Run `fn` on the (lazily started) timer thread after `delay_ms`. The
  /// callback must be lightweight — set flags, or submit() real work back to
  /// the pool; it deliberately bypasses the worker queue so timeouts fire
  /// even when every worker is busy in a stuck task. The pending timer
  /// counts toward wait_idle() (retry backoff must hold a fence open).
  /// Returns a nonzero id for cancel_timer().
  uint64_t submit_after(std::function<void()> fn, uint64_t delay_ms);

  /// Cancel a pending timer. Returns true if it had not fired yet (the
  /// callback will never run); false once firing has begun or the id is
  /// unknown.
  bool cancel_timer(uint64_t id);

  /// Block until every submitted task (including tasks submitted by running
  /// tasks) has finished. Must not be called while paused (it would wait
  /// forever on the parked queue).
  void wait_idle();

  /// Stop workers from dequeuing further tasks and block until every task
  /// already mid-execution has finished. Submissions still enqueue; the
  /// queue simply holds. The deterministic test gate: issue work against a
  /// paused pool, assert on the runtime's issue-time state, then resume().
  void pause();
  void resume();
  bool paused() const;

  unsigned worker_count() const { return static_cast<unsigned>(threads_.size()); }
  /// Tasks enqueued but not yet picked up (metrics gauge; takes the lock).
  std::size_t queue_depth() const;
  /// Tasks currently mid-execution on workers (metrics gauge).
  std::size_t executing() const;

 private:
  struct Timer {
    uint64_t id = 0;
    std::chrono::steady_clock::time_point deadline;
    std::function<void()> fn;
  };

  void worker_loop(int worker_id);
  void timer_loop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::condition_variable timer_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<Timer> timers_;  // unordered; counts are small, scans are fine
  std::vector<std::thread> threads_;
  std::thread timer_thread_;   // lazily started by the first submit_after()
  uint64_t next_timer_id_ = 0;
  std::size_t in_flight_ = 0;   // queued + executing + pending/firing timers
  std::size_t executing_ = 0;   // mid-execution on a worker
  bool shutdown_ = false;
  /// Destructor phase 1: stop the timer thread first, while submissions are
  /// still accepted, so a mid-fire timer callback can finish its submit().
  bool timers_stop_ = false;
  bool paused_ = false;
};

}  // namespace idxl
