#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace idxl {

/// Minimal work queue backing the real (in-process) executor. Tasks are
/// opaque closures; dependence ordering is handled above this layer (the
/// pool only ever sees *ready* tasks).
class ThreadPool {
 public:
  /// `worker_id_base` offsets the ids this pool's workers report through
  /// prof_current_worker(), so profiles from multi-pool runtimes (one pool
  /// per shard) keep globally distinct worker lanes.
  explicit ThreadPool(unsigned workers, int worker_id_base = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a ready task.
  void submit(std::function<void()> fn);

  /// Enqueue a batch of ready tasks under a single lock acquisition, waking
  /// at most one worker per task (all workers when the batch saturates the
  /// pool). Issuing an index launch's expansion chunks this way costs one
  /// mutex round-trip per launch instead of one per chunk.
  void submit_batch(std::vector<std::function<void()>> fns);

  /// Block until every submitted task (including tasks submitted by running
  /// tasks) has finished. Must not be called while paused (it would wait
  /// forever on the parked queue).
  void wait_idle();

  /// Stop workers from dequeuing further tasks and block until every task
  /// already mid-execution has finished. Submissions still enqueue; the
  /// queue simply holds. The deterministic test gate: issue work against a
  /// paused pool, assert on the runtime's issue-time state, then resume().
  void pause();
  void resume();
  bool paused() const;

  unsigned worker_count() const { return static_cast<unsigned>(threads_.size()); }
  /// Tasks enqueued but not yet picked up (metrics gauge; takes the lock).
  std::size_t queue_depth() const;
  /// Tasks currently mid-execution on workers (metrics gauge).
  std::size_t executing() const;

 private:
  void worker_loop(int worker_id);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  std::size_t in_flight_ = 0;   // queued + executing
  std::size_t executing_ = 0;   // mid-execution on a worker
  bool shutdown_ = false;
  bool paused_ = false;
};

}  // namespace idxl
