#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "functor/projection.hpp"
#include "region/accessor.hpp"
#include "region/region_forest.hpp"

namespace idxl {

using TaskFnId = uint32_t;

/// A region argument of a *single* task launch: a concrete region.
struct RegionArg {
  RegionId region;
  std::vector<FieldId> fields;
  Privilege privilege = Privilege::kRead;
  ReductionOp redop = ReductionOp::kNone;
};

/// A region argument of an *index* launch (§3): ⟨partition, projection
/// functor⟩ plus privilege. The parent region identifies which collection
/// the partition partitions; the functor maps each launch point to the
/// color of the sub-collection that point's task receives.
struct ProjectedArg {
  RegionId parent;
  PartitionId partition;
  ProjectionFunctor functor = ProjectionFunctor::identity(1);
  std::vector<FieldId> fields;
  Privilege privilege = Privilege::kRead;
  ReductionOp redop = ReductionOp::kNone;
};

/// Untyped by-value task arguments ("non-collection arguments, which are
/// simply passed to the task by value", §3).
class ArgBuffer {
 public:
  ArgBuffer() = default;

  template <typename T>
  static ArgBuffer of(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    ArgBuffer b;
    b.bytes_.resize(sizeof(T));
    std::memcpy(b.bytes_.data(), &value, sizeof(T));
    return b;
  }

  template <typename T>
  const T& as() const {
    static_assert(std::is_trivially_copyable_v<T>);
    IDXL_REQUIRE(bytes_.size() == sizeof(T), "task argument size mismatch");
    return *reinterpret_cast<const T*>(bytes_.data());
  }

  bool empty() const { return bytes_.empty(); }
  std::size_t size() const { return bytes_.size(); }

  /// Raw bytes, for serialization.
  const std::vector<std::byte>& raw() const { return bytes_; }
  static ArgBuffer from_bytes(std::vector<std::byte> bytes) {
    ArgBuffer b;
    b.bytes_ = std::move(bytes);
    return b;
  }

 private:
  std::vector<std::byte> bytes_;
};

/// Launcher for one task on concrete regions. `point`/`launch_domain`
/// identify the iteration when the task is one step of a sequential task
/// loop (the No-IDX / fallback form of an index launch), so task bodies see
/// the same TaskContext under either execution strategy.
struct TaskLauncher {
  TaskFnId task = 0;
  std::vector<RegionArg> args;
  ArgBuffer scalar_args;
  Point point = Point::p1(0);
  Domain launch_domain = Domain::line(1);
};

/// Launcher for an index launch: the O(1) descriptor of |domain| tasks.
/// Note the descriptor's size is independent of the domain volume — the
/// paper's central representation claim; `sizeof` is checked by tests.
struct IndexLauncher {
  TaskFnId task = 0;
  Domain domain;
  std::vector<ProjectedArg> args;
  ArgBuffer scalar_args;
  /// Set by a compiler that has already discharged the §3 non-interference
  /// conditions (statically, or via an emitted dynamic check). The runtime
  /// then skips its own safety analysis (§5: "the runtime assumes that
  /// safety checks have already been performed in a previous stage").
  bool assume_verified = false;
  /// When not kNone, each point task's TaskContext::return_value is folded
  /// with this commutative operator and the launch yields a Future (the
  /// future-map reduction of task-based runtimes). The fold happens in
  /// launch-point rank order, so floating-point results are deterministic.
  ReductionOp result_redop = ReductionOp::kNone;
};

}  // namespace idxl
