#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "functor/projection.hpp"
#include "obs/trace_context.hpp"
#include "region/accessor.hpp"
#include "region/region_forest.hpp"

namespace idxl {

using TaskFnId = uint32_t;

/// A region argument of a *single* task launch: a concrete region.
struct RegionArg {
  RegionId region;
  std::vector<FieldId> fields;
  Privilege privilege = Privilege::kRead;
  ReductionOp redop = ReductionOp::kNone;
};

/// A region argument of an *index* launch (§3): ⟨partition, projection
/// functor⟩ plus privilege. The parent region identifies which collection
/// the partition partitions; the functor maps each launch point to the
/// color of the sub-collection that point's task receives.
struct ProjectedArg {
  RegionId parent;
  PartitionId partition;
  ProjectionFunctor functor = ProjectionFunctor::identity(1);
  std::vector<FieldId> fields;
  Privilege privilege = Privilege::kRead;
  ReductionOp redop = ReductionOp::kNone;
};

/// Untyped by-value task arguments ("non-collection arguments, which are
/// simply passed to the task by value", §3).
class ArgBuffer {
 public:
  ArgBuffer() = default;

  template <typename T>
  static ArgBuffer of(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    ArgBuffer b;
    b.bytes_.resize(sizeof(T));
    std::memcpy(b.bytes_.data(), &value, sizeof(T));
    return b;
  }

  template <typename T>
  const T& as() const {
    static_assert(std::is_trivially_copyable_v<T>);
    IDXL_REQUIRE(bytes_.size() == sizeof(T), "task argument size mismatch");
    return *reinterpret_cast<const T*>(bytes_.data());
  }

  bool empty() const { return bytes_.empty(); }
  std::size_t size() const { return bytes_.size(); }

  /// Raw bytes, for serialization.
  const std::vector<std::byte>& raw() const { return bytes_; }
  static ArgBuffer from_bytes(std::vector<std::byte> bytes) {
    ArgBuffer b;
    b.bytes_ = std::move(bytes);
    return b;
  }

 private:
  std::vector<std::byte> bytes_;
};

/// Launcher for one task on concrete regions. `point`/`launch_domain`
/// identify the iteration when the task is one step of a sequential task
/// loop (the No-IDX / fallback form of an index launch), so task bodies see
/// the same TaskContext under either execution strategy.
///
/// The fluent builder form is the primary construction path:
///
///   rt.execute(TaskLauncher::for_task(init)
///                  .region(grid, {f_v}, Privilege::kWrite)
///                  .scalars(params));
///
/// Plain aggregate initialization keeps working — the builders are ordinary
/// member functions, so the struct remains an aggregate and the two forms
/// produce identical launchers.
struct TaskLauncher {
  TaskFnId task = 0;
  std::vector<RegionArg> args;
  ArgBuffer scalar_args;
  Point point = Point::p1(0);
  Domain launch_domain = Domain::line(1);
  /// When not kNone, execute() yields a Future holding the task's
  /// return_value (folded trivially: one producer).
  ReductionOp result_redop = ReductionOp::kNone;
  /// Retry policy (see docs/ROBUSTNESS.md): a retryable failure (exception,
  /// explicit fail, injected fault) re-enqueues the task up to `max_retries`
  /// times with exponential backoff; `timeout_ms` > 0 arms a timer that
  /// cancels the attempt cooperatively.
  uint32_t max_retries = 0;
  uint32_t retry_backoff_ms = 0;
  uint32_t timeout_ms = 0;
  /// Runtime-generated helper task (e.g. a distributed delta transfer):
  /// participates in dependence analysis and poison propagation like any
  /// task, but its own faults stay out of the user-facing FaultReport.
  bool internal = false;
  /// Distributed-tracing context (wire v4): the driver stamps the origin
  /// rank and the launch id this descriptor was assigned locally, so every
  /// replica can assert its own stream stayed aligned and remote spans
  /// carry a causal parent. Invalid (default) for purely local launches.
  obs::TraceContext trace_ctx;

  // --- fluent builders ---
  static TaskLauncher for_task(TaskFnId id) {
    TaskLauncher l;
    l.task = id;
    return l;
  }
  /// Append a region argument.
  TaskLauncher& region(RegionId r, std::vector<FieldId> fields, Privilege priv,
                       ReductionOp redop = ReductionOp::kNone) {
    args.push_back(RegionArg{r, std::move(fields), priv, redop});
    return *this;
  }
  /// By-value task arguments (any trivially copyable struct).
  template <typename T>
  TaskLauncher& scalars(const T& value) {
    scalar_args = ArgBuffer::of(value);
    return *this;
  }
  TaskLauncher& scalars(ArgBuffer buffer) {
    scalar_args = std::move(buffer);
    return *this;
  }
  /// Identify the task-loop iteration this launch represents.
  TaskLauncher& at(const Point& p, Domain domain) {
    point = p;
    launch_domain = std::move(domain);
    return *this;
  }
  /// Collect the task's return value into LaunchResult::future.
  TaskLauncher& reduce(ReductionOp op) {
    result_redop = op;
    return *this;
  }
  /// Retry a failed body up to `n` times before poisoning downstream.
  TaskLauncher& retries(uint32_t n) {
    max_retries = n;
    return *this;
  }
  /// First-retry delay; doubles on each subsequent retry.
  TaskLauncher& backoff(uint32_t ms) {
    retry_backoff_ms = ms;
    return *this;
  }
  /// Mark as a runtime-generated helper task (kept out of FaultReports).
  TaskLauncher& as_internal() {
    internal = true;
    return *this;
  }
  /// Cancel an attempt cooperatively after `ms` (0 disables).
  TaskLauncher& timeout(uint32_t ms) {
    timeout_ms = ms;
    return *this;
  }
};

/// Launcher for an index launch: the O(1) descriptor of |domain| tasks.
/// Note the descriptor's size is independent of the domain volume — the
/// paper's central representation claim; `sizeof` is checked by tests.
///
/// The fluent builder form is the primary construction path:
///
///   rt.execute_index(IndexLauncher::over(Domain::line(16))
///                        .with_task(diffuse)
///                        .region(grid, halos, id, {f_t}, Privilege::kRead)
///                        .region(grid, blocks, id, {f_t2}, Privilege::kWrite)
///                        .reduce(ReductionOp::kSum));
///
/// Plain aggregate initialization keeps working and builds the identical
/// descriptor (tests assert byte-equality of the serialized forms).
struct IndexLauncher {
  TaskFnId task = 0;
  Domain domain;
  std::vector<ProjectedArg> args;
  ArgBuffer scalar_args;
  /// Set by a compiler that has already discharged the §3 non-interference
  /// conditions (statically, or via an emitted dynamic check). The runtime
  /// then skips its own safety analysis (§5: "the runtime assumes that
  /// safety checks have already been performed in a previous stage").
  bool assume_verified = false;
  /// When not kNone, each point task's TaskContext::return_value is folded
  /// with this commutative operator and the launch yields a Future (the
  /// future-map reduction of task-based runtimes). The fold happens in
  /// launch-point rank order, so floating-point results are deterministic.
  ReductionOp result_redop = ReductionOp::kNone;
  /// Retry policy, applied independently to every point task of the launch
  /// (see docs/ROBUSTNESS.md and TaskLauncher for semantics).
  uint32_t max_retries = 0;
  uint32_t retry_backoff_ms = 0;
  uint32_t timeout_ms = 0;
  /// Opaque analysis payload riding the descriptor: an interference-
  /// certificate bundle (encode_interference_bundle) the driver attaches so
  /// worker ranks *validate* inter-launch proofs instead of re-deriving
  /// them. Empty for local launches; ignored by the safety analysis itself.
  std::vector<std::byte> analysis_bundle;
  /// Distributed-tracing context (wire v4); see TaskLauncher::trace_ctx.
  obs::TraceContext trace_ctx;

  // --- fluent builders ---
  static IndexLauncher over(Domain launch_domain) {
    IndexLauncher l;
    l.domain = std::move(launch_domain);
    return l;
  }
  IndexLauncher& with_task(TaskFnId id) {
    task = id;
    return *this;
  }
  /// Append a projected region argument: each launch point p receives the
  /// ⟨parent, partition⟩ sub-collection colored functor(p).
  IndexLauncher& region(RegionId parent, PartitionId partition,
                        ProjectionFunctor functor, std::vector<FieldId> fields,
                        Privilege priv, ReductionOp redop = ReductionOp::kNone) {
    args.push_back(ProjectedArg{parent, partition, std::move(functor),
                                std::move(fields), priv, redop});
    return *this;
  }
  /// By-value task arguments (any trivially copyable struct).
  template <typename T>
  IndexLauncher& scalars(const T& value) {
    scalar_args = ArgBuffer::of(value);
    return *this;
  }
  IndexLauncher& scalars(ArgBuffer buffer) {
    scalar_args = std::move(buffer);
    return *this;
  }
  /// Fold per-task return values; the launch then yields a Future.
  IndexLauncher& reduce(ReductionOp op) {
    result_redop = op;
    return *this;
  }
  /// Mark the launch compiler-verified: the runtime skips its own checks.
  IndexLauncher& verified(bool v = true) {
    assume_verified = v;
    return *this;
  }
  /// Retry a failed point task up to `n` times before poisoning downstream.
  IndexLauncher& retries(uint32_t n) {
    max_retries = n;
    return *this;
  }
  /// First-retry delay; doubles on each subsequent retry.
  IndexLauncher& backoff(uint32_t ms) {
    retry_backoff_ms = ms;
    return *this;
  }
  /// Cancel a point-task attempt cooperatively after `ms` (0 disables).
  IndexLauncher& timeout(uint32_t ms) {
    timeout_ms = ms;
    return *this;
  }
};

}  // namespace idxl
