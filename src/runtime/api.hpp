#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/hybrid.hpp"
#include "obs/metrics.hpp"
#include "runtime/fault.hpp"
#include "runtime/physical.hpp"
#include "runtime/types.hpp"

namespace idxl {

/// Counters exposing the asymptotic behaviour the paper argues about; tests
/// assert on these (e.g. an index launch is a single runtime call
/// regardless of |D|, the fallback loop is |D| calls).
struct RuntimeStats {
  uint64_t runtime_calls = 0;       ///< task issuance API calls (§5 issuance)
  uint64_t single_launches = 0;
  uint64_t index_launches = 0;
  uint64_t point_tasks = 0;         ///< tasks actually executed
  uint64_t dependence_edges = 0;
  uint64_t launches_safe_static = 0;
  uint64_t launches_safe_dynamic = 0;
  uint64_t launches_safe_unchecked = 0;
  uint64_t launches_assumed_verified = 0;  ///< compiler-verified (assume_verified)
  uint64_t launches_unsafe = 0;     ///< fell back to the task loop
  uint64_t dynamic_check_points = 0;
  uint64_t traced_tasks_replayed = 0;
  uint64_t tasks_completed = 0;     ///< tasks whose body has returned (live)
  uint64_t dependence_tests = 0;    ///< per-use conflict tests, both tiers (live)
  uint64_t verdict_cache_hits = 0;   ///< launches served from the verdict cache
  uint64_t verdict_cache_misses = 0; ///< cacheable launches analyzed afresh
  // --- group-level (two-tier) dependence analysis ---
  uint64_t group_launches = 0;       ///< index launches issued on the group path
  uint64_t group_edges = 0;          ///< launch-level summary conflicts (O(args))
  uint64_t group_fallbacks = 0;      ///< safe launches forced onto the per-point path
  uint64_t group_materializations = 0;  ///< trees flushed group → per-point
  // --- inter-launch interference analysis (certified pair verdicts) ---
  uint64_t interference_pair_tests = 0;  ///< pair analyses run (cache misses)
  uint64_t interference_skips = 0;   ///< group walks skipped on a checked certificate
  uint64_t interference_cache_hits = 0;
  uint64_t interference_cache_misses = 0;
  uint64_t interference_imported = 0;   ///< certificates received from a driver
  uint64_t interference_validated = 0;  ///< imported certificates that passed the checker
  uint64_t interference_rejected = 0;   ///< imported certificates refused by the checker
  // --- fault tolerance ---
  uint64_t tasks_failed = 0;        ///< terminal root-cause failures, all kinds
  uint64_t tasks_poisoned = 0;      ///< tasks skipped due to upstream failure
  uint64_t fault_injections = 0;    ///< FaultPlan injections fired
  uint64_t retry_attempts = 0;      ///< failed attempts re-enqueued
  uint64_t retries_succeeded = 0;   ///< tasks that succeeded after >= 1 retry
};

/// Deferred reduction of an index launch's per-task return values.
/// Resolve through RuntimeApi::get(future): it blocks until the producing
/// tasks have run, then folds the values in launch-point rank order
/// (deterministic floating point).
class Future {
 public:
  Future() = default;
  bool valid() const { return state_ != nullptr; }

  /// Fold the collected values. The producing launch must have completed
  /// (RuntimeApi::get handles the wait; call this directly only after
  /// wait_all()).
  double resolve() const;

  /// Deprecated shim — prefer rt.get(future). Equivalent to Runtime::
  /// wait_all() + resolve(), with the reduction span recorded when `rt`
  /// profiles.
  double get(class Runtime& rt) const;

 private:
  friend class Runtime;
  struct State {
    std::vector<double> values;  // indexed by launch-point rank
    ReductionOp op = ReductionOp::kNone;
  };
  std::shared_ptr<State> state_;
};

/// The outcome handed back by every launch call — execute() and
/// execute_index() return the same shape, so callers handle both launch
/// kinds uniformly. For single-task launches the safety report is trivially
/// safe (one task cannot interfere with itself) and ran_as_index_launch is
/// false.
struct LaunchResult {
  SafetyReport safety;
  bool ran_as_index_launch = false;
  Future future;  ///< valid iff the launcher set result_redop
  /// Id of this launch — the key into FaultReport::for_launch (and the
  /// flight recorder / Chrome trace cross-link).
  uint64_t launch_id = UINT64_MAX;
};

/// The backend-independent runtime interface (the Specx-style "one task API
/// across backends"): `Runtime` (local thread pool), `ShardedRuntime`
/// (in-process control replication) and `DistributedRuntime` (real
/// multi-process execution, src/dist) all implement it, so a workload
/// written against RuntimeApi runs unmodified on all three. Construct
/// through make_runtime() (src/dist/backend.hpp) to pick the backend from
/// config or $IDXL_BACKEND.
///
/// Contract notes:
///  * Issuance calls (register_task, execute, execute_index, fill) must
///    come from a single thread, as with Runtime.
///  * register_task must precede the first launch and must happen in the
///    same order on every process of a distributed run (task ids are
///    positional).
///  * fault_report() is complete only after wait_all(); wait_all is the
///    fence that merges cross-process outcomes.
class RuntimeApi {
 public:
  RuntimeApi() = default;
  virtual ~RuntimeApi() = default;
  RuntimeApi(const RuntimeApi&) = delete;
  RuntimeApi& operator=(const RuntimeApi&) = delete;

  /// The region forest launches name their collections in. Setup (index
  /// spaces, fields, partitions, regions) must happen before the first
  /// launch.
  virtual RegionForest& forest() = 0;

  /// Register a task body under a new id.
  virtual TaskFnId register_task(std::string name, TaskFn fn) = 0;

  /// Launch a single task (program-order semantics; §2).
  virtual LaunchResult execute(const TaskLauncher& launcher) = 0;

  /// Launch |domain| tasks as one index launch (§3) — the O(1) descriptor
  /// whose safety analysis, expansion and (in dist mode) shipping the
  /// backend handles.
  virtual LaunchResult execute_index(const IndexLauncher& launcher) = 0;

  /// Fence: block until every issued task reached a terminal state, on every
  /// process/shard of the backend.
  virtual void wait_all() = 0;

  /// Structured outcome of every failure so far: root causes plus the
  /// poisoned closure, sorted by task seq. Call after wait_all(); empty
  /// report = clean run. Distributed backends return the merged,
  /// cross-process-verified report.
  virtual FaultReport fault_report() const = 0;

  /// Backend counters mapped onto the common shape. Live (any thread).
  virtual RuntimeStats stats() const = 0;

  /// The metrics registry backing stats().
  virtual obs::MetricsRegistry& metrics() = 0;

  /// Run `program`, fence, and return the merged FaultReport — the
  /// ShardedRuntime::run contract generalized to every backend (the sharded
  /// backend overrides this to execute `program` SPMD on every shard).
  virtual FaultReport run(const std::function<void(RuntimeApi&)>& program);

  /// Resolve a launch's Future: fence, then fold the collected values.
  double get(const Future& future);

  /// Make region data readable from top-level code: fence and (where the
  /// backend keeps replicas) synchronize storage. read_region calls it.
  virtual void sync_for_read() = 0;

  /// Fill every element of field `f` of region `r` with the `size`-byte
  /// pattern, as a task ordered against every launch touching that data.
  virtual void fill_bytes_region(RegionId r, FieldId f, const void* pattern,
                                 std::size_t size) = 0;

  /// Read access to region data from top-level code (fences first).
  template <typename T>
  Accessor<T> read_region(RegionId r, FieldId f) {
    sync_for_read();
    return Accessor<T>(forest(), r, f, Privilege::kRead);
  }

  /// Typed fill — see fill_bytes_region.
  template <typename T>
  void fill(RegionId r, FieldId f, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    IDXL_REQUIRE(forest().field(forest().region(r).fspace, f).size == sizeof(T),
                 "fill value type does not match the field size");
    fill_bytes_region(r, f, &value, sizeof(T));
  }
};

}  // namespace idxl
