#pragma once

#include <memory>
#include <vector>

#include "region/domain.hpp"

namespace idxl {

/// Sharding functor (§5, DCR distribution): a pure function from a launch
/// point to the node that owns it. Because it is pure, every node computes
/// the same assignment with no communication, and the result can be
/// memoized (the simulator models the memoization benefit).
class ShardingFunctor {
 public:
  virtual ~ShardingFunctor() = default;

  /// Which of `total_shards` nodes owns launch point `p` of `domain`?
  virtual uint32_t shard(const Point& p, const Domain& domain,
                         uint32_t total_shards) const = 0;

  /// All points of `domain` owned by `shard_id` — the O(|D|_local) local
  /// sub-domain selection of §5. Default: filter by shard().
  virtual std::vector<Point> local_points(const Domain& domain, uint32_t shard_id,
                                          uint32_t total_shards) const;
};

/// Default sharding: contiguous blocks of the row-major linearization, so
/// node k owns points [k*|D|/N, (k+1)*|D|/N). Matches Legion's default.
class BlockShardingFunctor final : public ShardingFunctor {
 public:
  uint32_t shard(const Point& p, const Domain& domain,
                 uint32_t total_shards) const override;
};

/// Round-robin sharding by linearized index; useful for load-balancing
/// sparse sweeps (the DOM wavefronts) where block sharding would idle nodes.
class CyclicShardingFunctor final : public ShardingFunctor {
 public:
  uint32_t shard(const Point& p, const Domain& domain,
                 uint32_t total_shards) const override;
};

/// One slice of an index launch in the non-DCR distribution path: a
/// sub-domain plus the contiguous node range it is destined for. Slices are
/// fixed-size descriptors (the domain inside a slice of a *dense* launch is
/// a rect), which is what makes the broadcast tree O(log |D|) in messages.
struct Slice {
  Domain domain;
  uint32_t node_lo = 0;
  uint32_t node_hi = 0;  // inclusive

  uint32_t node_count() const { return node_hi - node_lo + 1; }
};

/// Slicing functor (§5, non-DCR distribution): recursively split a slice
/// into sub-slices forwarded down a broadcast tree. Implementations must
/// partition both the domain and the node range.
class SlicingFunctor {
 public:
  virtual ~SlicingFunctor() = default;

  /// Split `slice` one level. Returning a single-element vector equal to the
  /// input stops recursion (the slice is expanded into tasks at its node).
  virtual std::vector<Slice> slice(const Slice& s) const = 0;
};

/// Default: binary split of the node range with a proportional split of the
/// (linearized) domain, yielding a balanced binary broadcast tree.
class BinarySlicingFunctor final : public SlicingFunctor {
 public:
  std::vector<Slice> slice(const Slice& s) const override;
};

}  // namespace idxl
