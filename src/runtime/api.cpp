#include "runtime/api.hpp"

namespace idxl {

double Future::resolve() const {
  IDXL_REQUIRE(valid(), "resolve() on an empty Future");
  IDXL_ASSERT(!state_->values.empty());
  double acc = state_->values.front();
  for (std::size_t i = 1; i < state_->values.size(); ++i)
    acc = apply_reduction(state_->op, acc, state_->values[i]);
  return acc;
}

FaultReport RuntimeApi::run(const std::function<void(RuntimeApi&)>& program) {
  program(*this);
  wait_all();
  return fault_report();
}

double RuntimeApi::get(const Future& future) {
  IDXL_REQUIRE(future.valid(), "get() on an empty Future");
  wait_all();
  return future.resolve();
}

}  // namespace idxl
