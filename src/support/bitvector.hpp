#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace idxl {

/// Fixed-capacity dynamic bit vector.
///
/// This is the "bitmask" of the paper's Listing 3: the dynamic projection
/// functor check allocates one of these per partition, sized to the
/// partition's color-space volume, and probes/sets one bit per evaluated
/// domain point. std::vector<bool> would work but gives no control over
/// word-level operations (popcount, fast clear) which the checker and the
/// physical analysis both need.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t nbits)
      : nbits_(nbits), words_((nbits + kWordBits - 1) / kWordBits, 0) {}

  std::size_t size() const { return nbits_; }
  bool empty() const { return nbits_ == 0; }

  bool test(std::size_t i) const {
    IDXL_ASSERT(i < nbits_);
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }

  void set(std::size_t i) {
    IDXL_ASSERT(i < nbits_);
    words_[i / kWordBits] |= uint64_t{1} << (i % kWordBits);
  }

  void reset(std::size_t i) {
    IDXL_ASSERT(i < nbits_);
    words_[i / kWordBits] &= ~(uint64_t{1} << (i % kWordBits));
  }

  /// Probe-and-set in one pass; returns the previous value. This is the
  /// inner step of Listing 3 (read `conflict`, then set).
  bool test_and_set(std::size_t i) {
    IDXL_ASSERT(i < nbits_);
    uint64_t& w = words_[i / kWordBits];
    const uint64_t mask = uint64_t{1} << (i % kWordBits);
    const bool was = (w & mask) != 0;
    w |= mask;
    return was;
  }

  void clear() { std::fill(words_.begin(), words_.end(), 0); }

  std::size_t count() const {
    std::size_t n = 0;
    for (uint64_t w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
    return n;
  }

  bool any() const {
    for (uint64_t w : words_)
      if (w != 0) return true;
    return false;
  }

  bool intersects(const BitVector& other) const {
    const std::size_t n = std::min(words_.size(), other.words_.size());
    for (std::size_t i = 0; i < n; ++i)
      if (words_[i] & other.words_[i]) return true;
    return false;
  }

  BitVector& operator|=(const BitVector& other) {
    IDXL_ASSERT(nbits_ == other.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }

  BitVector& operator&=(const BitVector& other) {
    IDXL_ASSERT(nbits_ == other.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
  }

  friend bool operator==(const BitVector& a, const BitVector& b) {
    return a.nbits_ == b.nbits_ && a.words_ == b.words_;
  }

 private:
  static constexpr std::size_t kWordBits = 64;
  std::size_t nbits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace idxl
