#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <vector>

namespace idxl {

/// Streaming mean/min/max/stddev accumulator (Welford). The evaluation
/// protocol of the paper averages 5 runs per data point; benches use this
/// to aggregate those repetitions.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Wall-clock stopwatch used by the Table 2/3 micro-measurements.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}
  void restart() { start_ = Clock::now(); }
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double elapsed_us() const { return elapsed_seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace idxl
