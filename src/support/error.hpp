#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace idxl {

/// Thrown on violations of API contracts (bad arguments, misuse of the
/// runtime from application code). Internal invariant violations abort
/// instead, via IDXL_ASSERT.
class RuntimeError : public std::runtime_error {
 public:
  explicit RuntimeError(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void fatal(const char* file, int line, const char* cond,
                               const char* msg) {
  std::fprintf(stderr, "idxl fatal: %s:%d: assertion `%s` failed%s%s\n", file,
               line, cond, msg[0] ? ": " : "", msg);
  std::abort();
}

}  // namespace idxl

// Internal invariant check. Always on: the cost is negligible next to the
// work the runtime does per task, and silent corruption in a dependence
// analyzer is far worse than an abort.
#define IDXL_ASSERT(cond)                                 \
  do {                                                    \
    if (!(cond)) ::idxl::fatal(__FILE__, __LINE__, #cond, ""); \
  } while (0)

#define IDXL_ASSERT_MSG(cond, msg)                             \
  do {                                                         \
    if (!(cond)) ::idxl::fatal(__FILE__, __LINE__, #cond, msg); \
  } while (0)

// API contract check: throws, so applications can test failure modes.
#define IDXL_REQUIRE(cond, msg)                                      \
  do {                                                               \
    if (!(cond))                                                     \
      throw ::idxl::RuntimeError(std::string("idxl: ") + (msg) +     \
                                 " (violated: " #cond ")");          \
  } while (0)
