#pragma once

#include <cstdint>

namespace idxl {

/// Deterministic xoshiro256** PRNG. Every workload generator in the repo
/// uses this (never std::rand or random_device) so that tests, examples and
/// benches are reproducible across runs and platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    for (auto& word : s_) {
      seed += 0x9E3779B97F4A7C15ull;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  uint64_t next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Uses rejection to avoid modulo bias.
  uint64_t next_below(uint64_t bound) {
    if (bound <= 1) return 0;
    const uint64_t threshold = -bound % bound;
    for (;;) {
      const uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t next_in(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(next_below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace idxl
