#pragma once

#include <map>

#include "compiler/ast.hpp"
#include "runtime/runtime.hpp"

namespace idxl::regent {

/// What the optimizer decided to emit for a candidate loop (§4).
enum class LoopStrategy : uint8_t {
  /// Statically proven safe: a bare index launch, zero runtime checks.
  kIndexLaunch,
  /// Static analysis left residual arguments: emit the Listing-3 dynamic
  /// check followed by a branch between the index launch and the loop.
  kGuardedIndexLaunch,
  /// Ineligible or statically proven unsafe: the original task loop.
  kTaskLoop,
};

const char* strategy_name(LoopStrategy s);

/// Compile-time verdict for one pair of launcher arguments in *different*
/// compiled loops of a program (cross_analyze_program). kDisjoint verdicts
/// carry `certified` — the CertificateChecker re-validated the analyzer's
/// proof — and tell the programmer the runtime will skip the cross-launch
/// dependence walk for this pair; kInterferes carries the validated racing
/// pair as a compile-time counterexample.
struct InterLaunchVerdict {
  std::size_t earlier_loop = 0;  ///< index of the earlier loop in the program
  uint32_t arg = 0;              ///< this loop's launcher argument
  uint32_t earlier_arg = 0;      ///< the earlier loop's launcher argument
  PairVerdict verdict = PairVerdict::kUnknown;
  bool certified = false;  ///< kDisjoint backed by a checker-validated proof
  std::string reason;
  std::optional<RaceWitness> witness;  ///< validated collision (kInterferes)
};

struct CompileDiagnostics {
  bool eligible = false;       ///< body shape admits an index launch
  std::string reason;          ///< why ineligible / unsafe, or which check ran
  SafetyOutcome static_outcome = SafetyOutcome::kSafeStatic;
  /// Racing pair refuting safety when the static tier proved the loop
  /// unsafe — the compile-time counterexample explain() surfaces.
  std::optional<RaceWitness> witness;
  /// Verdicts against every earlier eligible loop's arguments on the same
  /// region tree (filled by cross_analyze_program; empty for single loops).
  std::vector<InterLaunchVerdict> inter_launch;
};

/// Result of one execution of a compiled loop.
struct LoopRunResult {
  bool ran_as_index_launch = false;
  bool dynamic_check_ran = false;
  bool dynamic_check_passed = true;
  uint64_t dynamic_check_points = 0;
  /// Colliding pair when the emitted guard's dynamic check failed (arg
  /// indices refer to the guarded residual arguments, remapped back to
  /// launcher argument positions).
  std::optional<RaceWitness> witness;
  std::map<std::string, int64_t> scalars;  ///< final values of accumulators
};

/// The compiled artifact: behaviourally equivalent to interpreting the
/// loop, but executing via the strategy chosen at compile time. This is
/// our stand-in for Regent's AST-to-AST transformation — the "generated
/// code" is a closure over the runtime API instead of Lua/Terra source.
class CompiledLoop {
 public:
  LoopStrategy strategy() const { return strategy_; }
  const CompileDiagnostics& diagnostics() const { return diagnostics_; }

  /// Run the loop. For kGuardedIndexLaunch this first evaluates the
  /// emitted dynamic check (Listing 3) and then branches, exactly like the
  /// generated AST in the paper.
  LoopRunResult execute(Runtime& rt) const;

  /// Human-readable compilation report (strategy + per-argument verdicts).
  std::string explain() const;

 private:
  friend CompiledLoop compile_loop(const ForLoop&, const RegionForest&);
  friend void cross_analyze_program(std::vector<CompiledLoop>&, const RegionForest&);

  ForLoop loop_;
  LoopStrategy strategy_ = LoopStrategy::kTaskLoop;
  CompileDiagnostics diagnostics_;
  IndexLauncher launcher_;                 // valid unless kTaskLoop from ineligibility
  std::vector<uint32_t> residual_indices_; // launcher args the emitted guard checks
};

/// The §4 optimization pass: eligibility analysis, static safety analysis,
/// and hybrid code generation.
CompiledLoop compile_loop(const ForLoop& loop, const RegionForest& forest);

/// Whole-program companion pass: run the inter-launch interference analysis
/// (src/analysis/interference.hpp) over every pair of eligible compiled
/// loops and surface the per-argument-pair verdicts in each later loop's
/// CompileDiagnostics::inter_launch. Pairs on different region trees are
/// trivially disjoint and elided from the report.
void cross_analyze_program(std::vector<CompiledLoop>& loops,
                           const RegionForest& forest);

/// Reference semantics: interpret the loop as written (sequential task
/// launches). Used by tests to check compiled artifacts against the
/// original program.
LoopRunResult interpret_loop(const ForLoop& loop, Runtime& rt);

}  // namespace idxl::regent
