#include "compiler/transform.hpp"

namespace idxl::regent {

namespace {

/// Find the single nested loop in `body`, if the level is collapsible.
/// Simple statements are collected into `hoisted`; anything else vetoes.
const NestedLoopStmt* single_nested_loop(const std::vector<Stmt>& body,
                                         std::vector<Stmt>& hoisted) {
  const NestedLoopStmt* nested = nullptr;
  for (const Stmt& stmt : body) {
    if (const auto* n = std::get_if<NestedLoopStmt>(&stmt)) {
      if (nested != nullptr) return nullptr;  // two inner loops: not perfect
      nested = n;
    } else if (std::holds_alternative<VarDeclStmt>(stmt) ||
               std::holds_alternative<ScalarAccumStmt>(stmt)) {
      hoisted.push_back(stmt);
    } else {
      return nullptr;  // a task call or carried statement between loops
    }
  }
  return nested;
}

/// Dense product of two dense domains: (d1, d2) -> d1 x d2.
Domain product(const Domain& outer, const Domain& inner) {
  const Rect& a = outer.bounds();
  const Rect& b = inner.bounds();
  Rect r;
  r.lo.dim = r.hi.dim = a.dim() + b.dim();
  for (int d = 0; d < a.dim(); ++d) {
    r.lo[d] = a.lo[d];
    r.hi[d] = a.hi[d];
  }
  for (int d = 0; d < b.dim(); ++d) {
    r.lo[a.dim() + d] = b.lo[d];
    r.hi[a.dim() + d] = b.hi[d];
  }
  return Domain(r);
}

}  // namespace

ForLoop flatten_loops(const ForLoop& loop) {
  ForLoop current = loop;
  for (;;) {
    if (!current.domain.dense()) return current;
    std::vector<Stmt> hoisted;
    const NestedLoopStmt* nested = single_nested_loop(current.body, hoisted);
    if (nested == nullptr || !nested->domain.dense()) return current;
    if (current.domain.dim() + nested->domain.dim() > kMaxDim) return current;

    ForLoop merged;
    merged.domain = product(current.domain, nested->domain);
    merged.body = std::move(hoisted);
    merged.body.insert(merged.body.end(), nested->body->begin(), nested->body->end());
    current = std::move(merged);
  }
}

int nest_depth(const ForLoop& loop) {
  int depth = 1;
  const std::vector<Stmt>* body = &loop.body;
  for (;;) {
    const NestedLoopStmt* nested = nullptr;
    for (const Stmt& stmt : *body)
      if (const auto* n = std::get_if<NestedLoopStmt>(&stmt)) nested = n;
    if (nested == nullptr) return depth;
    ++depth;
    body = nested->body.get();
  }
}

}  // namespace idxl::regent
