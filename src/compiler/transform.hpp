#pragma once

#include "compiler/ast.hpp"

namespace idxl::regent {

/// Collapse a perfect nest of dense loops
///
///   for i = ... do
///     for j = ... do
///       foo(p[g(i, j)])
///     end
///   end
///
/// into a single loop over the product domain, so the whole nest becomes
/// one multi-dimensional index launch instead of |outer| separate launches
/// — the multi-dimensional launch-domain idiom of Regent. A nest level is
/// collapsible when its body is exactly one NestedLoopStmt (plus VarDecl /
/// ScalarAccum simple statements, which are hoisted) and both domains are
/// dense with compatible total dimensionality (<= kMaxDim).
///
/// Returns the (possibly partially) flattened loop; a loop with no
/// collapsible structure comes back unchanged.
ForLoop flatten_loops(const ForLoop& loop);

/// Depth of the perfect nest rooted at `loop` (1 = no nesting).
int nest_depth(const ForLoop& loop);

}  // namespace idxl::regent
