#include "compiler/compile.hpp"

namespace idxl::regent {

namespace {

const TaskCallStmt* find_single_call(const ForLoop& loop, std::string& reason) {
  const TaskCallStmt* call = nullptr;
  for (const Stmt& stmt : loop.body) {
    if (const auto* c = std::get_if<TaskCallStmt>(&stmt)) {
      if (call != nullptr) {
        reason = "loop body contains more than one task launch";
        return nullptr;
      }
      call = c;
    } else if (std::holds_alternative<CarriedAssignStmt>(stmt)) {
      reason = "loop-carried scalar assignment (only reductions are permitted)";
      return nullptr;
    } else if (const auto* o = std::get_if<OpaqueStmt>(&stmt)) {
      reason = "unanalyzable statement: " + o->description;
      return nullptr;
    } else if (std::holds_alternative<NestedLoopStmt>(stmt)) {
      reason = "nested loop: run flatten_loops first";
      return nullptr;
    }
    // VarDecl and ScalarAccum are the "simple statements" §4 permits.
  }
  if (call == nullptr) reason = "loop body contains no task launch";
  return call;
}

IndexLauncher build_launcher(const ForLoop& loop, const TaskCallStmt& call) {
  IndexLauncher launcher;
  launcher.task = call.task;
  launcher.domain = loop.domain;
  launcher.scalar_args = call.scalar_args;
  for (const CallArg& arg : call.args) {
    ProjectedArg pa;
    pa.parent = arg.parent;
    pa.partition = arg.partition;
    pa.functor = ProjectionFunctor::symbolic(arg.index);
    pa.fields = arg.fields;
    pa.privilege = arg.privilege;
    pa.redop = arg.redop;
    launcher.args.push_back(std::move(pa));
  }
  return launcher;
}

std::vector<CheckArg> build_check_args(const IndexLauncher& launcher,
                                       const RegionForest& forest) {
  std::vector<CheckArg> check_args;
  check_args.reserve(launcher.args.size());
  for (const ProjectedArg& pa : launcher.args) {
    CheckArg ca;
    ca.functor = &pa.functor;
    ca.color_space = forest.color_space(pa.partition);
    ca.partition_disjoint = forest.is_disjoint(pa.partition);
    ca.partition_uid = pa.partition.id;
    ca.collection_uid = forest.region(pa.parent).tree_id;
    ca.field_mask = field_mask(pa.fields);
    ca.priv = pa.privilege;
    ca.redop = pa.redop;
    check_args.push_back(ca);
  }
  return check_args;
}

void run_task_loop(const ForLoop& loop, const TaskCallStmt& call, Runtime& rt) {
  loop.domain.for_each([&](const Point& p) {
    TaskLauncher single;
    single.task = call.task;
    single.scalar_args = call.scalar_args;
    single.point = p;
    single.launch_domain = loop.domain;
    for (const CallArg& arg : call.args) {
      Point color;
      color.dim = static_cast<int>(arg.index.size());
      for (std::size_t d = 0; d < arg.index.size(); ++d)
        color[static_cast<int>(d)] = arg.index[d]->eval(p);
      RegionArg ra;
      ra.region = rt.forest().subregion(arg.parent, arg.partition, color);
      ra.fields = arg.fields;
      ra.privilege = arg.privilege;
      ra.redop = arg.redop;
      single.args.push_back(std::move(ra));
    }
    rt.execute(single);
  });
}

void run_scalar_statements(const ForLoop& loop, LoopRunResult& result) {
  // Accumulators are loop-local scalar work, independent of task execution;
  // they run the same way under every strategy.
  for (const Stmt& stmt : loop.body) {
    if (const auto* acc = std::get_if<ScalarAccumStmt>(&stmt)) {
      int64_t value = acc->op == ReductionOp::kProd ? 1 : 0;
      bool first = true;
      loop.domain.for_each([&](const Point& p) {
        const int64_t v = acc->value->eval(p);
        if (first && (acc->op == ReductionOp::kMin || acc->op == ReductionOp::kMax)) {
          value = v;
          first = false;
        } else {
          value = apply_reduction(acc->op, value, v);
        }
      });
      result.scalars[acc->name] = value;
    }
  }
}

LaunchArgSummary arg_summary(const ForLoop& loop, const ProjectedArg& pa,
                             const RegionForest& forest) {
  LaunchArgSummary s;
  s.functor = pa.functor;
  s.domain = loop.domain;
  s.color_space = forest.color_space(pa.partition);
  s.partition_uid = pa.partition.id;
  s.partition_disjoint = forest.is_disjoint(pa.partition);
  s.collection_uid = forest.region(pa.parent).tree_id;
  s.field_mask = field_mask(pa.fields);
  s.priv = pa.privilege;
  s.redop = pa.redop;
  return s;
}

}  // namespace

void cross_analyze_program(std::vector<CompiledLoop>& loops,
                           const RegionForest& forest) {
  for (std::size_t j = 0; j < loops.size(); ++j) {
    if (!loops[j].diagnostics_.eligible) continue;
    for (std::size_t i = 0; i < j; ++i) {
      if (!loops[i].diagnostics_.eligible) continue;
      const auto& args_i = loops[i].launcher_.args;
      const auto& args_j = loops[j].launcher_.args;
      for (std::size_t b = 0; b < args_j.size(); ++b) {
        const LaunchArgSummary sb = arg_summary(loops[j].loop_, args_j[b], forest);
        for (std::size_t a = 0; a < args_i.size(); ++a) {
          const LaunchArgSummary sa = arg_summary(loops[i].loop_, args_i[a], forest);
          if (sa.collection_uid != sb.collection_uid) continue;
          const InterferenceResult r = analyze_interference(sa, sb);
          InterLaunchVerdict v;
          v.earlier_loop = i;
          v.arg = static_cast<uint32_t>(b);
          v.earlier_arg = static_cast<uint32_t>(a);
          v.verdict = r.verdict;
          v.certified = r.certificate.has_value();
          v.reason = r.reason;
          v.witness = r.witness;
          loops[j].diagnostics_.inter_launch.push_back(std::move(v));
        }
      }
    }
  }
}

const char* strategy_name(LoopStrategy s) {
  switch (s) {
    case LoopStrategy::kIndexLaunch: return "index-launch";
    case LoopStrategy::kGuardedIndexLaunch: return "guarded-index-launch";
    case LoopStrategy::kTaskLoop: return "task-loop";
  }
  return "?";
}

CompiledLoop compile_loop(const ForLoop& loop, const RegionForest& forest) {
  CompiledLoop compiled;
  compiled.loop_ = loop;

  std::string reason;
  const TaskCallStmt* call = find_single_call(loop, reason);
  if (call == nullptr) {
    compiled.strategy_ = LoopStrategy::kTaskLoop;
    compiled.diagnostics_.eligible = false;
    compiled.diagnostics_.reason = reason;
    return compiled;
  }
  compiled.diagnostics_.eligible = true;
  compiled.launcher_ = build_launcher(loop, *call);
  const std::vector<CheckArg> check_args = build_check_args(compiled.launcher_, forest);

  // Static half of the hybrid analysis: dynamic checks disabled, so a
  // kSafeUnchecked outcome means "residual work for the emitted guard".
  // The compiler always runs the extended tier — compile-time analysis is
  // paid once, so the abstract interpreter's extra work is free at runtime
  // and turns more loops into bare index launches.
  AnalysisOptions static_only;
  static_only.enable_dynamic_checks = false;
  static_only.extended_static = true;
  auto pair_independent = [&](std::size_t i, std::size_t j) {
    return forest.partitions_independent(
        compiled.launcher_.args[i].parent, compiled.launcher_.args[i].partition,
        compiled.launcher_.args[j].parent, compiled.launcher_.args[j].partition);
  };
  const SafetyReport report = analyze_launch_safety(check_args, loop.domain,
                                                    static_only, pair_independent);
  compiled.diagnostics_.static_outcome = report.outcome;

  switch (report.outcome) {
    case SafetyOutcome::kSafeStatic:
      compiled.strategy_ = LoopStrategy::kIndexLaunch;
      compiled.launcher_.assume_verified = true;
      compiled.diagnostics_.reason = "statically verified";
      break;
    case SafetyOutcome::kSafeUnchecked: {
      compiled.strategy_ = LoopStrategy::kGuardedIndexLaunch;
      compiled.diagnostics_.reason =
          "static analysis left " + std::to_string(report.residual_args.size()) +
          " argument(s) for the dynamic check";
      // The emitted guard checks exactly the residual arguments.
      compiled.residual_indices_ = report.residual_args;
      break;
    }
    case SafetyOutcome::kUnsafe:
      compiled.strategy_ = LoopStrategy::kTaskLoop;
      compiled.diagnostics_.reason = "statically unsafe: " + report.reason;
      compiled.diagnostics_.witness = report.witness;
      break;
    case SafetyOutcome::kSafeDynamic:
      IDXL_ASSERT_MSG(false, "dynamic outcome with dynamic checks disabled");
      break;
  }
  return compiled;
}

LoopRunResult CompiledLoop::execute(Runtime& rt) const {
  LoopRunResult result;
  run_scalar_statements(loop_, result);

  const TaskCallStmt* call = nullptr;
  for (const Stmt& stmt : loop_.body)
    if (const auto* c = std::get_if<TaskCallStmt>(&stmt)) call = c;

  switch (strategy_) {
    case LoopStrategy::kIndexLaunch: {
      rt.execute_index(launcher_);
      result.ran_as_index_launch = true;
      return result;
    }
    case LoopStrategy::kGuardedIndexLaunch: {
      // The generated guard of Listing 3: evaluate the dynamic check on the
      // residual arguments, then branch between the index launch and the
      // original loop.
      const std::vector<CheckArg> all_args = build_check_args(launcher_, rt.forest());
      std::vector<CheckArg> residual;
      for (uint32_t idx : residual_indices_) residual.push_back(all_args[idx]);
      const DynamicCheckResult check = dynamic_cross_check(residual, loop_.domain);
      result.dynamic_check_ran = true;
      result.dynamic_check_passed = check.safe;
      result.dynamic_check_points = check.points_evaluated;
      if (!check.safe && check.witness.has_value()) {
        RaceWitness w = *check.witness;
        w.arg_i = residual_indices_[w.arg_i];
        w.arg_j = residual_indices_[w.arg_j];
        result.witness = w;
      }
      if (check.safe) {
        IndexLauncher verified = launcher_;
        verified.assume_verified = true;
        rt.execute_index(verified);
        result.ran_as_index_launch = true;
      } else {
        IDXL_ASSERT(call != nullptr);
        run_task_loop(loop_, *call, rt);
      }
      return result;
    }
    case LoopStrategy::kTaskLoop: {
      if (call != nullptr) run_task_loop(loop_, *call, rt);
      return result;
    }
  }
  return result;
}

std::string CompiledLoop::explain() const {
  std::string s = "strategy: ";
  s += strategy_name(strategy_);
  s += "\nreason: " + diagnostics_.reason;
  if (diagnostics_.witness.has_value())
    s += "\nwitness: " + diagnostics_.witness->to_string();
  if (diagnostics_.eligible) {
    s += "\narguments:";
    for (const ProjectedArg& pa : launcher_.args) {
      s += "\n  ";
      s += privilege_name(pa.privilege);
      s += " partition " + std::to_string(pa.partition.id) + " via " +
           pa.functor.to_string();
    }
  }
  if (!diagnostics_.inter_launch.empty()) {
    s += "\ninter-launch:";
    for (const InterLaunchVerdict& v : diagnostics_.inter_launch) {
      s += "\n  arg " + std::to_string(v.arg) + " vs loop " +
           std::to_string(v.earlier_loop) + " arg " +
           std::to_string(v.earlier_arg) + ": ";
      s += pair_verdict_name(v.verdict);
      if (v.certified) s += " (certified)";
      if (!v.reason.empty()) s += " — " + v.reason;
      if (v.witness.has_value()) s += "; witness " + v.witness->to_string();
    }
  }
  return s;
}

LoopRunResult interpret_loop(const ForLoop& loop, Runtime& rt) {
  LoopRunResult result;
  run_scalar_statements(loop, result);
  for (const Stmt& stmt : loop.body)
    if (const auto* call = std::get_if<TaskCallStmt>(&stmt))
      run_task_loop(loop, *call, rt);
  return result;
}

}  // namespace idxl::regent
