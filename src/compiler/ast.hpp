#pragma once

#include <string>
#include <variant>
#include <vector>

#include "runtime/types.hpp"

namespace idxl::regent {

/// AST of the mini-Regent subset relevant to index launches (§4): a loop
/// over a launch domain whose body launches a task on partition elements
/// selected by expressions of the loop variable, e.g.
///
///   for i = 0, N do
///     foo(p[i], q[f(i)])
///   end
///
/// Loop coordinates appear in index expressions as make_coord(0..dim-1).

/// One region argument of the task call: `partition[index...]` with the
/// privilege the callee declares.
struct CallArg {
  RegionId parent;
  PartitionId partition;
  std::vector<ExprPtr> index;  ///< one expression per color-space dimension
  std::vector<FieldId> fields;
  Privilege privilege = Privilege::kRead;
  ReductionOp redop = ReductionOp::kNone;
};

struct TaskCallStmt {
  TaskFnId task = 0;
  std::vector<CallArg> args;
  ArgBuffer scalar_args;
};

/// A loop-local variable declaration — "simple statements (such as variable
/// declarations)" (§4) do not block the optimization.
struct VarDeclStmt {
  std::string name;
  ExprPtr init;  ///< expression over the loop coordinates
};

/// A scalar reduction across iterations (`acc += expr(i)`), the one kind of
/// loop-carried dependence §4 permits.
struct ScalarAccumStmt {
  std::string name;
  ReductionOp op = ReductionOp::kSum;
  ExprPtr value;
};

/// A scalar assignment whose value must be observed by later iterations —
/// a genuine loop-carried dependence; makes the loop ineligible.
struct CarriedAssignStmt {
  std::string name;
  ExprPtr value;
};

/// Anything the compiler does not understand; makes the loop ineligible.
struct OpaqueStmt {
  std::string description;
};

struct NestedLoopStmt;

using Stmt = std::variant<TaskCallStmt, VarDeclStmt, ScalarAccumStmt,
                          CarriedAssignStmt, OpaqueStmt, NestedLoopStmt>;

/// An inner `for` loop. Index expressions inside refer to loop coordinates
/// globally: coord 0 is the outermost loop variable, coord 1 the next, etc.
/// The flatten_loops pass (transform.hpp) collapses perfect nests of dense
/// loops into one multi-dimensional launch domain; un-flattened nests make
/// the outer loop ineligible.
struct NestedLoopStmt {
  Domain domain = Domain::line(1);
  std::shared_ptr<std::vector<Stmt>> body = std::make_shared<std::vector<Stmt>>();
};

/// The candidate loop: `for p in domain do body end`.
struct ForLoop {
  Domain domain = Domain::line(1);
  std::vector<Stmt> body;
};

}  // namespace idxl::regent
