// Circuit demo: the unstructured-graph circuit simulation of §6.1 on the
// real runtime, validated against the serial reference, with a side-by-side
// of IDX vs No-IDX issuance cost (the quantity index launches compress).
#include <cmath>
#include <cstdio>

#include "apps/circuit.hpp"

using namespace idxl;
using namespace idxl::apps;

int main() {
  CircuitParams params;
  params.pieces = 8;
  params.nodes_per_piece = 64;
  params.wires_per_piece = 128;
  params.pct_external = 15;
  params.iterations = 10;

  auto run_with = [&](bool idx) {
    RuntimeConfig cfg;
    cfg.enable_index_launches = idx;
    Runtime rt(cfg);
    CircuitApp app(rt, params);
    app.run(params.iterations);
    const auto voltages = app.voltages();
    double checksum = 0;
    for (double v : voltages) checksum += v * v;
    std::printf(
      "%-8s runtime calls=%-6llu point tasks=%-6llu dependence edges=%-6llu "
      "voltage L2^2=%.6f\n",
      idx ? "IDX" : "No-IDX",
      static_cast<unsigned long long>(rt.stats().runtime_calls),
      static_cast<unsigned long long>(rt.stats().point_tasks),
      static_cast<unsigned long long>(rt.stats().dependence_edges), checksum);
    return voltages;
  };

  std::printf("circuit: %lld pieces x %lld wires, %d%% external wires, %d steps\n",
              static_cast<long long>(params.pieces),
              static_cast<long long>(params.wires_per_piece), params.pct_external,
              params.iterations);

  const auto with_idx = run_with(true);
  const auto without_idx = run_with(false);

  const auto reference = CircuitApp::reference_voltages(params, params.iterations);
  double max_err_idx = 0, max_err_noidx = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    max_err_idx = std::max(max_err_idx, std::abs(with_idx[i] - reference[i]));
    max_err_noidx = std::max(max_err_noidx, std::abs(without_idx[i] - reference[i]));
  }
  std::printf("max |error| vs serial reference: IDX=%.3e, No-IDX=%.3e\n", max_err_idx,
              max_err_noidx);
  std::printf(
      "note: identical physics either way — the index launch is purely a "
      "representation change (3 runtime calls/step vs %lld).\n",
      static_cast<long long>(3 * params.pieces));
  return max_err_idx < 1e-9 && max_err_noidx < 1e-9 ? 0 : 1;
}
