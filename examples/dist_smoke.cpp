// Multi-process smoke test for the distributed runtime (docs/DISTRIBUTED.md).
//
// Runs the PRK star stencil across real OS processes and verifies the result
// against the serial reference, then prints the merged FaultReport (inject
// remote faults via IDXL_FAULT_PLAN — the report must match a local run).
//
//   dist_smoke [--ranks N]                       # fork mode (default: 2)
//   dist_smoke --workers host:port,host:port     # exec mode: pre-started
//                                                # idxl-noded daemons
//
// Exit code 0 = regions matched the reference and teardown drained cleanly.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/stencil.hpp"
#include "dist/dist_runtime.hpp"
#include "dist/smoke_tasks.hpp"
#include "region/partition_ops.hpp"

using namespace idxl;

int main(int argc, char** argv) {
  dist::DistConfig dc;
  dc.ranks = 2;
  dc.runtime.workers = 2;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--ranks" && i + 1 < argc) {
      dc.ranks = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--workers" && i + 1 < argc) {
      std::string csv = argv[++i];
      std::size_t start = 0;
      while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::string part = csv.substr(
            start, comma == std::string::npos ? std::string::npos : comma - start);
        if (!part.empty()) dc.workers.push_back(part);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      dc.ranks = static_cast<uint32_t>(dc.workers.size() + 1);
    } else {
      std::fprintf(stderr, "usage: %s [--ranks N | --workers h:p,h:p]\n", argv[0]);
      return 2;
    }
  }

  const apps::StencilParams params{/*nx=*/32, /*ny=*/32, /*px=*/2, /*py=*/2,
                                   /*radius=*/1, /*iterations=*/3};
  try {
    dist::DistributedRuntime rt(dc);
    auto& forest = rt.forest();
    const IndexSpaceId grid_is =
        forest.create_index_space(Domain(Rect::box2(params.nx, params.ny)));
    const FieldSpaceId fs = forest.create_field_space();
    const FieldId fin = forest.allocate_field(fs, sizeof(double), "in");
    const FieldId fout = forest.allocate_field(fs, sizeof(double), "out");
    const RegionId grid = forest.create_region(grid_is, fs);
    const PartitionId blocks =
        partition_equal(forest, grid_is, Rect::box2(params.px, params.py));
    const PartitionId halos =
        partition_halo(forest, grid_is, blocks, params.radius);

    {
      Accessor<double> in(forest, grid, fin, Privilege::kWrite);
      Accessor<double> out(forest, grid, fout, Privilege::kWrite);
      for (const Point& p : Rect::box2(params.nx, params.ny)) {
        in.write(p, static_cast<double>(p[0] + p[1]));
        out.write(p, 0.0);
      }
    }

    // Capture-free bodies resolvable by idxl-noded's named-task registry.
    const TaskFnId t_stencil =
        rt.register_task("smoke_stencil", dist::smoke::stencil_body);
    const TaskFnId t_increment =
        rt.register_task("smoke_increment", dist::smoke::increment_body);

    dist::smoke::StencilArgs args;
    args.fin = fin;
    args.fout = fout;
    args.radius = params.radius;
    args.nx = params.nx;
    args.ny = params.ny;

    const Domain launch_domain = Domain(Rect::box2(params.px, params.py));
    const auto id = ProjectionFunctor::identity(2);
    for (int it = 0; it < params.iterations; ++it) {
      rt.execute_index(IndexLauncher::over(launch_domain)
                           .with_task(t_stencil)
                           .scalars(ArgBuffer::of(args))
                           .region(grid, halos, id, {fin}, Privilege::kRead)
                           .region(grid, blocks, id, {fout},
                                   Privilege::kReadWrite));
      rt.execute_index(IndexLauncher::over(launch_domain)
                           .with_task(t_increment)
                           .scalars(ArgBuffer::of(args))
                           .region(grid, blocks, id, {fin},
                                   Privilege::kReadWrite));
    }
    rt.wait_all();

    const dist::DataPlaneStats dp = rt.data_plane_stats();
    std::printf("dist_smoke: plane=%s bytes hub=%llu relay=%llu p2p=%llu "
                "transfers=%llu\n",
                rt.delta_transfers() ? "delta" : "star-hub",
                static_cast<unsigned long long>(dp.bytes_hub),
                static_cast<unsigned long long>(dp.bytes_relay),
                static_cast<unsigned long long>(dp.bytes_p2p),
                static_cast<unsigned long long>(dp.transfers));

    // IDXL_CLUSTER_METRICS=<path>: dump the rank-aggregated metrics snapshot
    // (rank-labeled series + rank="all" roll-ups) as one JSON document. The
    // merged Chrome trace needs no hook here — IDXL_TRACE=<path> makes the
    // runtime write it at shutdown.
    if (const char* mpath = std::getenv("IDXL_CLUSTER_METRICS");
        mpath != nullptr && mpath[0] != '\0') {
      const std::string json = rt.cluster_metrics_json();
      if (std::FILE* f = std::fopen(mpath, "w")) {
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("dist_smoke: cluster metrics -> %s\n", mpath);
      }
    }

    const FaultReport report = rt.fault_report();
    std::printf("dist_smoke: ranks=%u failures=%zu poisoned=%zu\n", rt.ranks(),
                report.failures.size(), report.poisoned.size());
    for (const TaskFault& f : report.failures)
      std::printf("  failure: %s\n", f.to_string().c_str());

    double max_err = 0.0;
    if (report.ok()) {
      const std::vector<double> expect =
          apps::StencilApp::reference_output(params, params.iterations);
      auto acc = rt.read_region<double>(grid, fout);
      std::size_t i = 0;
      for (const Point& p : Rect::box2(params.nx, params.ny)) {
        const double err = std::abs(acc.read(p) - expect[i++]);
        if (err > max_err) max_err = err;
      }
      std::printf("dist_smoke: max_err=%g\n", max_err);
    }
    // Destructor fences, shuts workers down and reaps children.
    if (!report.ok() || max_err > 1e-12) {
      std::printf("dist_smoke: FAILED\n");
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dist_smoke: error: %s\n", e.what());
    return 1;
  }
  std::printf("dist_smoke: OK (clean drain)\n");
  return 0;
}
