// Compiler demo: the §4 hybrid optimization pass on mini-Regent loops.
// Five candidate loops — the compiler proves one safe statically, guards
// two with the emitted Listing-3 dynamic check (one passes at runtime, the
// paper's i%3 example fails and takes the original-loop branch), rejects
// one statically, and declines one as ineligible.
#include <cstdio>

#include "compiler/compile.hpp"
#include "region/partition_ops.hpp"

using namespace idxl;
using namespace idxl::regent;

int main() {
  Runtime rt;
  auto& forest = rt.forest();
  const IndexSpaceId is = forest.create_index_space(Domain::line(30));
  const FieldSpaceId fs = forest.create_field_space();
  const FieldId value = forest.allocate_field(fs, sizeof(double), "v");
  const RegionId q = forest.create_region(is, fs);
  const PartitionId blocks = partition_equal(forest, is, Rect::line(6));

  const TaskFnId stamp = rt.register_task("stamp", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.write(p, static_cast<double>(ctx.point[0])); });
  });

  auto loop_with = [&](std::vector<ExprPtr> index, int64_t extent) {
    ForLoop loop;
    loop.domain = Domain::line(extent);
    TaskCallStmt call;
    call.task = stamp;
    call.args = {{q, blocks, std::move(index), {value}, Privilege::kWrite,
                  ReductionOp::kNone}};
    loop.body = {call};
    return loop;
  };

  struct Case {
    const char* source;
    ForLoop loop;
  };
  Case cases[] = {
      {"for i = 0, 6 do stamp(q[i]) end", loop_with({make_coord(0)}, 6)},
      {"for i = 0, 6 do stamp(q[(i + 2) % 6]) end",
       loop_with({make_mod(make_add(make_coord(0), make_const(2)), make_const(6))}, 6)},
      {"for i = 0, 5 do stamp(q[i % 3]) end  -- the paper's Listing 2",
       loop_with({make_mod(make_coord(0), make_const(3))}, 5)},
      {"for i = 0, 6 do stamp(q[2]) end",
       loop_with({make_const(2)}, 6)},
  };

  for (const Case& c : cases) {
    const CompiledLoop compiled = compile_loop(c.loop, forest);
    std::printf("----\nsource:   %s\n%s\n", c.source, compiled.explain().c_str());
    const LoopRunResult run = compiled.execute(rt);
    std::printf("executed: index launch=%s", run.ran_as_index_launch ? "yes" : "no");
    if (run.dynamic_check_ran)
      std::printf(", dynamic check %s after %llu evals",
                  run.dynamic_check_passed ? "PASSED" : "FAILED",
                  static_cast<unsigned long long>(run.dynamic_check_points));
    std::printf("\n");
  }

  // An ineligible loop: a loop-carried scalar assignment.
  ForLoop carried = loop_with({make_coord(0)}, 6);
  carried.body.insert(carried.body.begin(), CarriedAssignStmt{"x", make_coord(0)});
  const CompiledLoop rejected = compile_loop(carried, forest);
  std::printf("----\nsource:   for i = 0, 6 do x = i; stamp(q[i]) end\n%s\n",
              rejected.explain().c_str());

  rt.wait_all();
  return 0;
}
