// Fault-tolerance demo: a 1024-point index launch survives an injected
// failure through the per-launch retry policy, then the same failure
// without retries poisons the downstream dependence closure and the run
// ends with a structured FaultReport instead of a hang or an abort.
//
//   ./fault_demo                 # built-in plan: fail point 137, attempt 0
//   IDXL_FAULT_PLAN="0@(5)" ./fault_demo      # override from the env
//   IDXL_FAULT_PLAN="random:42:0.01" ./fault_demo  # seeded random plan
#include <cstdio>

#include "region/partition_ops.hpp"
#include "runtime/runtime.hpp"

using namespace idxl;

namespace {

struct World {
  Runtime rt;
  RegionId grid;
  PartitionId blocks;
  TaskFnId fill = 0, square = 0;

  explicit World(RuntimeConfig cfg, int64_t points) : rt(cfg) {
    auto& forest = rt.forest();
    const IndexSpaceId is = forest.create_index_space(Domain::line(points));
    const FieldSpaceId fs = forest.create_field_space();
    forest.allocate_field(fs, sizeof(double), "v");
    grid = forest.create_region(is, fs);
    blocks = partition_equal(forest, is, Rect::line(points));
    fill = rt.register_task("fill", [](TaskContext& ctx) {
      auto acc = ctx.region(0).accessor<double>(0);
      ctx.region(0).domain().for_each(
          [&](const Point& p) { acc.write(p, static_cast<double>(p[0])); });
    });
    square = rt.register_task("square", [](TaskContext& ctx) {
      auto acc = ctx.region(0).accessor<double>(0);
      ctx.region(0).domain().for_each(
          [&](const Point& p) { acc.write(p, acc.read(p) * acc.read(p)); });
    });
  }

  void pipeline(int64_t points, uint32_t retries) {
    const auto id = ProjectionFunctor::identity(1);
    rt.execute_index(IndexLauncher::over(Domain::line(points))
                         .with_task(fill)
                         .retries(retries)
                         .backoff(1)
                         .region(grid, blocks, id, {0}, Privilege::kWrite));
    rt.execute_index(IndexLauncher::over(Domain::line(points))
                         .with_task(square)
                         .retries(retries)
                         .backoff(1)
                         .region(grid, blocks, id, {0}, Privilege::kReadWrite));
    rt.wait_all();
  }
};

}  // namespace

int main() {
  constexpr int64_t kPoints = 1024;

  RuntimeConfig cfg;
  // Deterministic injection: point 137 of launch 0 fails on its first
  // attempt. IDXL_FAULT_PLAN (read inside the Runtime) overrides this.
  cfg.fault_plan =
      std::make_shared<FaultPlan>(FaultPlan().fail(0, Point::p1(137), 0));

  std::printf("== with retries: the launch heals itself ==\n");
  {
    World w(cfg, kPoints);
    w.pipeline(kPoints, /*retries=*/2);
    const FaultReport report = w.rt.fault_report();
    const RuntimeStats stats = w.rt.stats();
    std::printf("fault report: %s\n", report.ok() ? "clean" : "NOT clean");
    std::printf("injections=%llu retries=%llu recovered=%llu\n",
                static_cast<unsigned long long>(stats.fault_injections),
                static_cast<unsigned long long>(stats.retry_attempts),
                static_cast<unsigned long long>(stats.retries_succeeded));
    auto acc = w.rt.read_region<double>(w.grid, 0);
    bool correct = true;
    for (int64_t i = 0; i < kPoints; ++i)
      correct = correct && acc.read(Point::p1(i)) == static_cast<double>(i * i);
    std::printf("region state: %s\n", correct ? "correct" : "CORRUPT");
  }

  std::printf("\n== without retries: structured failure, no hang ==\n");
  {
    World w(cfg, kPoints);
    w.pipeline(kPoints, /*retries=*/0);
    const FaultReport report = w.rt.fault_report();
    std::printf("%s", report.to_string().c_str());
    std::printf("%llu tasks poisoned downstream of the failure\n",
                static_cast<unsigned long long>(report.poisoned.size()));
  }
  return 0;
}
