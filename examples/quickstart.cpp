// Quickstart: the paper's Listing 1 in this library.
//
//   for i = 0, N do   -- parallel
//     foo(p[i])       -- trivial (identity) projection functor
//   end
//
//   for i = 0, N do   -- parallel
//     bar(q[f(i)])    -- non-trivial projection functor
//   end
//
// Builds a region, partitions it, launches both loops as index launches,
// and prints what the hybrid safety analysis decided for each.
#include <cstdio>

#include "dist/backend.hpp"
#include "region/partition_ops.hpp"

using namespace idxl;

int main() {
  constexpr int64_t kElements = 64;
  constexpr int64_t kPieces = 8;

  // Backend picked by $IDXL_BACKEND (local | sharded | dist) — the same
  // program runs on a thread pool, on in-process shards, or across real OS
  // processes without modification.
  const std::unique_ptr<RuntimeApi> rt_ptr = dist::make_runtime();
  RuntimeApi& rt = *rt_ptr;
  auto& forest = rt.forest();

  // A collection of 64 doubles, partitioned into 8 disjoint pieces.
  const IndexSpaceId is = forest.create_index_space(Domain::line(kElements));
  const FieldSpaceId fs = forest.create_field_space();
  const FieldId value = forest.allocate_field(fs, sizeof(double), "value");
  const RegionId region = forest.create_region(is, fs);
  const PartitionId pieces = partition_equal(forest, is, Rect::line(kPieces));

  // foo: fill a piece with the launch index.
  const TaskFnId foo = rt.register_task("foo", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.write(p, static_cast<double>(ctx.point[0])); });
  });
  // bar: scale a piece by 10.
  const TaskFnId bar = rt.register_task("bar", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.write(p, acc.read(p)); });
    // read-write: multiply in place
    ctx.region(0).domain().for_each([&](const Point& p) {
      acc.write(p, acc.read(p) * 10.0);
    });
  });

  // Loop 1: foo(p[i]) — the identity projection functor. Statically safe.
  const LaunchResult r1 = rt.execute_index(
      IndexLauncher::over(Domain::line(kPieces))
          .with_task(foo)
          .region(region, pieces, ProjectionFunctor::identity(1), {value},
                  Privilege::kWrite));
  std::printf("loop 1 (foo(p[i])):    outcome=%s, ran as index launch=%s\n",
              r1.safety.outcome == SafetyOutcome::kSafeStatic ? "safe-static"
                                                              : "other",
              r1.ran_as_index_launch ? "yes" : "no");

  // Loop 2: bar(q[f(i)]) with f(i) = (i + 3) mod 8 — injective here, but
  // only the dynamic check can prove it.
  const LaunchResult r2 = rt.execute_index(
      IndexLauncher::over(Domain::line(kPieces))
          .with_task(bar)
          .region(region, pieces, ProjectionFunctor::modular1d(3, kPieces),
                  {value}, Privilege::kReadWrite));
  std::printf("loop 2 (bar(q[f(i)])): outcome=%s, dynamic points checked=%llu\n",
              r2.safety.outcome == SafetyOutcome::kSafeDynamic ? "safe-dynamic"
                                                               : "other",
              static_cast<unsigned long long>(r2.safety.dynamic_points));

  rt.wait_all();
  auto acc = rt.read_region<double>(region, value);
  std::printf("region contents (one element per piece):");
  for (int64_t piece = 0; piece < kPieces; ++piece)
    std::printf(" %.0f", acc.read(Point::p1(piece * (kElements / kPieces))));
  std::printf("\n");

  const RuntimeStats stats = rt.stats();
  std::printf(
      "runtime calls=%llu (2 launches, %lld tasks) | static-safe=%llu "
      "dynamic-safe=%llu\n",
      static_cast<unsigned long long>(stats.runtime_calls),
      static_cast<long long>(2 * kPieces),
      static_cast<unsigned long long>(stats.launches_safe_static),
      static_cast<unsigned long long>(stats.launches_safe_dynamic));
  return 0;
}
