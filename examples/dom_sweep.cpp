// DOM sweep demo: the paper's flagship non-trivial projection functor
// (§6.2.3). MiniSoleil's discrete-ordinates radiation module launches over
// 3-D diagonal wavefronts and projects each onto three 2-D exchange planes;
// only the dynamic check can prove those launches safe. This demo runs the
// full multi-physics step and reports how the hybrid analysis classified
// every launch.
#include <cstdio>

#include "apps/soleil.hpp"

using namespace idxl;
using namespace idxl::apps;

int main() {
  SoleilParams params;
  params.bx = 3;
  params.by = 3;
  params.bz = 2;
  params.cx = params.cy = params.cz = 4;
  params.iterations = 3;

  Runtime rt;
  SoleilApp app(rt, params);

  SoleilApp::IterationStats totals;
  for (int it = 0; it < params.iterations; ++it) {
    const auto stats = app.run_iteration();
    totals.launches += stats.launches;
    totals.index_launches += stats.index_launches;
    totals.dynamic_checked += stats.dynamic_checked;
  }
  rt.wait_all();

  std::printf("MiniSoleil %lldx%lldx%lld blocks, %d steps\n",
              static_cast<long long>(params.bx), static_cast<long long>(params.by),
              static_cast<long long>(params.bz), params.iterations);
  std::printf("launches issued:            %d\n", totals.launches);
  std::printf("ran as index launches:      %d\n", totals.index_launches);
  std::printf("verified by dynamic check:  %d (the DOM wavefronts)\n",
              totals.dynamic_checked);
  std::printf("statically verified:        %llu\n",
              static_cast<unsigned long long>(rt.stats().launches_safe_static));
  std::printf("dynamic check functor evals: %llu\n",
              static_cast<unsigned long long>(rt.stats().dynamic_check_points));

  // Validate against the serial reference.
  const auto ref = SoleilApp::reference(params, params.iterations);
  const auto temps = app.temperatures();
  double max_err = 0;
  for (std::size_t i = 0; i < temps.size(); ++i)
    max_err = std::max(max_err, std::abs(temps[i] - ref.temperature[i]));
  std::printf("max |T error| vs serial reference: %.3e\n", max_err);

  // Show one sweep's intensity decaying into the domain.
  std::printf("direction 0 intensity along the main diagonal:");
  const auto intensity = app.intensity(0);
  for (int64_t d = 0; d < std::min({params.bx, params.by, params.bz}); ++d)
    std::printf(" %.4f",
                intensity[static_cast<std::size_t>((d * params.by + d) * params.bz + d)]);
  std::printf("\n");
  return max_err < 1e-9 ? 0 : 1;
}
