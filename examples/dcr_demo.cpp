// Dynamic control replication, functionally: the same SPMD program runs on
// every shard, each shard analyzes the identical launch stream, and the
// sharding functor decides which points each shard executes. Cross-shard
// dependencies flow through shared completion events. Per-shard statistics
// show the paper's central asymmetry: issuance and analysis are replicated
// (every shard pays them for every task without index launches), execution
// is partitioned.
#include <cstdio>

#include "region/partition_ops.hpp"
#include "shard/sharded_runtime.hpp"

using namespace idxl;

int main(int argc, char**) {
  constexpr int64_t kPieces = 12;
  constexpr int64_t kElements = 12 * 16;
  constexpr int kIterations = 5;

  ShardedConfig cfg;
  cfg.shards = 4;
  // Per-shard replica storage with explicit producer->consumer copies (run
  // with any argument to use shared storage instead).
  cfg.distributed_storage = argc <= 1;

  ShardedRuntime rt(cfg);
  auto& forest = rt.forest();
  const IndexSpaceId is = forest.create_index_space(Domain::line(kElements));
  const FieldSpaceId fs = forest.create_field_space();
  const FieldId f_cur = forest.allocate_field(fs, sizeof(double), "cur");
  const FieldId f_next = forest.allocate_field(fs, sizeof(double), "next");
  const RegionId grid = forest.create_region(is, fs);
  const PartitionId blocks = partition_equal(forest, is, Rect::line(kPieces));
  const PartitionId halos = partition_halo(forest, is, blocks, 1);

  const TaskFnId init = rt.register_task("init", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.write(p, p[0] % 11 == 0 ? 1.0 : 0.0); });
  });
  const TaskFnId diffuse = rt.register_task("diffuse", [](TaskContext& ctx) {
    auto in = ctx.region(0).accessor<double>(0);
    auto out = ctx.region(1).accessor<double>(1);
    const Domain& halo = ctx.region(0).domain();
    ctx.region(1).domain().for_each([&](const Point& p) {
      double v = in.read(p) * 0.5;
      const Point l = Point::p1(p[0] - 1), r = Point::p1(p[0] + 1);
      if (halo.contains(l)) v += in.read(l) * 0.25;
      if (halo.contains(r)) v += in.read(r) * 0.25;
      out.write(p, v);
    });
  });
  const TaskFnId flip = rt.register_task("flip", [](TaskContext& ctx) {
    auto in = ctx.region(0).accessor<double>(1);
    auto out = ctx.region(1).accessor<double>(0);
    ctx.region(1).domain().for_each([&](const Point& p) { out.write(p, in.read(p)); });
  });

  // The SPMD program — every shard runs this verbatim (control
  // replication); divergent control flow would be detected and rejected.
  rt.run([&](ShardContext& ctx) {
    const auto id = ProjectionFunctor::identity(1);
    ctx.execute_index(IndexLauncher::over(Domain::line(kPieces))
                          .with_task(init)
                          .region(grid, blocks, id, {f_cur}, Privilege::kWrite));
    for (int it = 0; it < kIterations; ++it) {
      ctx.execute_index(
          IndexLauncher::over(Domain::line(kPieces))
              .with_task(diffuse)
              .region(grid, halos, id, {f_cur}, Privilege::kRead)
              .region(grid, blocks, id, {f_next}, Privilege::kWrite));
      ctx.execute_index(
          IndexLauncher::over(Domain::line(kPieces))
              .with_task(flip)
              .region(grid, blocks, id, {f_next}, Privilege::kRead)
              .region(grid, blocks, id, {f_cur}, Privilege::kWrite));
    }
  });

  std::printf("4 shards, %d launches of %lld tasks each\n", 1 + 2 * kIterations,
              static_cast<long long>(kPieces));
  std::printf("%-8s%-12s%-16s%-14s%-12s%-10s%s\n", "shard", "launches", "points analyzed",
              "local tasks", "remote deps", "copies", "(replicated vs partitioned)");
  for (uint32_t s = 0; s < cfg.shards; ++s) {
    const ShardStats& stats = rt.stats(s);
    std::printf("%-8u%-12llu%-16llu%-14llu%-12llu%-10llu\n", s,
                static_cast<unsigned long long>(stats.launches_issued),
                static_cast<unsigned long long>(stats.points_analyzed),
                static_cast<unsigned long long>(stats.local_tasks),
                static_cast<unsigned long long>(stats.remote_dependencies),
                static_cast<unsigned long long>(stats.copies_planned));
  }

  double mass = 0;
  auto acc = rt.read_region<double>(grid, f_cur);
  for (int64_t i = 0; i < kElements; ++i) mass += acc.read(Point::p1(i));
  std::printf("total mass after %d diffusion steps: %.6f (conserved in the "
              "interior)\n",
              kIterations, mass);
  return 0;
}
