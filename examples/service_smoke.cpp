// service_smoke — multi-client correctness check of the session server.
//
// Starts an in-process ServiceRuntime over the local backend, connects
// several concurrent clients (each its own tenant, its own region
// namespace), and has each one build a partitioned 1-D region, fill it,
// run a pipelined stream of smoke_increment index launches, fence, and
// read the result back. Every element must equal the iteration count —
// proof that per-session handle translation keeps the tenants' regions
// fully isolated inside the one shared backend forest.
//
// Prints "service_smoke: OK" on success.

#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "dist/backend.hpp"
#include "dist/smoke_tasks.hpp"
#include "service/client.hpp"
#include "service/service_runtime.hpp"

using namespace idxl;

namespace {

constexpr int kClients = 4;
constexpr int64_t kElems = 256;
constexpr int64_t kBlocks = 8;
constexpr int kIters = 10;

void run_client(uint16_t port, int index, std::string* error) {
  try {
    service::ClientHello hello;
    hello.tenant = "tenant-" + std::to_string(index);
    hello.weight = static_cast<uint32_t>(1 + index % 4);
    service::ServiceClient client =
        service::ServiceClient::connect_tcp("127.0.0.1", port, hello);

    const IndexSpaceId is = client.create_index_space(Domain(Rect::line(kElems)));
    const FieldSpaceId fs = client.create_field_space();
    const FieldId f = client.allocate_field(fs, sizeof(double), "v");
    std::vector<Domain> blocks;
    const int64_t bs = kElems / kBlocks;
    for (int64_t b = 0; b < kBlocks; ++b)
      blocks.emplace_back(Rect(Point::p1(b * bs), Point::p1((b + 1) * bs - 1)));
    const PartitionId part = client.create_partition(
        is, Rect::line(kBlocks), blocks, Disjointness::kDisjoint);
    const RegionId region = client.create_region(is, fs);

    client.fill(region, f, static_cast<double>(index));

    dist::smoke::StencilArgs args;
    args.fin = f;
    for (int it = 0; it < kIters; ++it) {
      client.launch(IndexLauncher::over(Domain(Rect::line(kBlocks)))
                        .with_task(client.task_id("smoke_increment"))
                        .region(region, part, ProjectionFunctor::identity(1),
                                {f}, Privilege::kReadWrite)
                        .scalars(args));
    }
    const FaultReport report = client.fence();
    if (!report.ok()) throw std::runtime_error("fence reported faults");
    if (client.rejects() != 0) throw std::runtime_error("launches rejected");

    const std::vector<std::byte> bytes = client.read_field(region, f);
    if (bytes.size() != kElems * sizeof(double))
      throw std::runtime_error("read returned wrong size");
    for (int64_t i = 0; i < kElems; ++i) {
      double v = 0;
      std::memcpy(&v, bytes.data() + i * sizeof(double), sizeof(double));
      if (v != static_cast<double>(index + kIters))
        throw std::runtime_error("element " + std::to_string(i) +
                                 " = " + std::to_string(v) + ", expected " +
                                 std::to_string(index + kIters));
    }
    client.goodbye();
  } catch (const std::exception& e) {
    *error = e.what();
  }
}

}  // namespace

int main() {
  try {
    service::ServiceRuntime server(dist::make_runtime());
    const uint16_t port = server.listen_tcp();

    std::vector<std::thread> threads;
    std::vector<std::string> errors(kClients);
    for (int i = 0; i < kClients; ++i)
      threads.emplace_back(run_client, port, i, &errors[i]);
    for (auto& t : threads) t.join();
    for (int i = 0; i < kClients; ++i) {
      if (!errors[i].empty()) {
        std::fprintf(stderr, "service_smoke: client %d failed: %s\n", i,
                     errors[i].c_str());
        return 1;
      }
    }
    // The server erases a session just *after* acking its goodbye; drain()
    // is the barrier that guarantees the teardown completed.
    server.drain();
    if (server.active_sessions() != 0) {
      std::fprintf(stderr, "service_smoke: sessions leaked\n");
      return 1;
    }
    std::printf("service_smoke: OK\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "service_smoke: %s\n", e.what());
    return 1;
  }
}
