// Profile the PRK stencil: run a few iterations with
// RuntimeConfig::enable_profiling, then
//   * write a Chrome-trace JSON (open in about:tracing or ui.perfetto.dev),
//   * print the plain-text summary (p50/p95/max per task),
//   * print the critical path through the recorded task graph.
//
// Usage: profile_stencil [trace-file]   (default: profile_stencil.trace.json)
#include <cmath>
#include <cstdio>

#include "apps/stencil.hpp"
#include "obs/profiler.hpp"
#include "runtime/runtime.hpp"

using namespace idxl;
using namespace idxl::apps;

int main(int argc, char** argv) {
  const char* trace_path = argc > 1 ? argv[1] : "profile_stencil.trace.json";

  StencilParams params;
  params.nx = params.ny = 128;
  params.px = params.py = 4;
  params.radius = 2;
  params.iterations = 8;

  RuntimeConfig cfg;
  cfg.enable_profiling = true;
  Runtime rt(cfg);
  StencilApp app(rt, params);

  {
    ProfileScope setup = rt.profiler().phase("iterations 0-3 (untraced)");
    for (int it = 0; it < params.iterations / 2; ++it) app.run_iteration();
    rt.wait_all();
  }
  {
    // Second half under a trace: iteration 4 captures the dependence
    // analysis, 5-7 replay it — both span kinds land in the profile.
    ProfileScope traced = rt.profiler().phase("iterations 4-7 (traced)");
    for (int it = params.iterations / 2; it < params.iterations; ++it) {
      rt.begin_trace(1);
      app.run_iteration();
      rt.end_trace(1);
    }
    rt.wait_all();
  }

  rt.profiler().write_chrome_trace(trace_path);
  std::printf("%s", rt.profiler().summary().c_str());
  std::printf("\nwrote %s (%zu events) — load it in about:tracing or "
              "ui.perfetto.dev\n",
              trace_path, rt.profiler().event_count());

  // Sanity: the run must have produced the same answer as the serial
  // reference, profiled or not.
  const auto out = app.output();
  const auto ref = StencilApp::reference_output(params, params.iterations);
  for (std::size_t i = 0; i < ref.size(); ++i)
    if (std::abs(out[i] - ref[i]) > 1e-9) {
      std::fprintf(stderr, "mismatch at %zu\n", i);
      return 1;
    }
  return 0;
}
