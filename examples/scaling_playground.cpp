// Scaling playground: the simulator as a user-facing tool. Describe your
// own application's launch structure (tasks per launch, kernel time, halo
// bytes, functor triviality) and see how the four §6.2 configurations scale
// it — the what-if analysis the paper's evaluation does for Circuit,
// Stencil and Soleil-X.
#include <cstdio>

#include "sim/experiment.hpp"

using namespace idxl;
using namespace idxl::sim;

int main(int argc, char** argv) {
  // A hypothetical 4-launch-per-step application, ~20 ms of GPU work per
  // node per step. Override the kernel milliseconds with argv[1].
  double kernel_ms = 5.0;
  if (argc > 1) kernel_ms = std::atof(argv[1]);

  auto app_builder = [kernel_ms](uint32_t nodes) {
    AppSpec app;
    app.name = "playground";
    for (int s = 0; s < 4; ++s) {
      LaunchSpec l;
      l.name = "phase" + std::to_string(s);
      l.tasks = nodes;
      l.num_args = 2;
      l.kernel_s = kernel_ms * 1e-3;
      l.remote_bytes_per_task = 64e3;
      app.iteration.push_back(l);
    }
    app.iterations = 10;
    return app;
  };

  const auto nodes = nodes_up_to(1024);
  const auto series = run_scaling_experiment(
      app_builder, four_configs(), nodes,
      [](const SimResult& r, uint32_t) { return 1.0 / r.seconds_per_iteration; });
  print_figure("Scaling playground: 4 launches/step, " + std::to_string(kernel_ms) +
                   " ms kernels",
               "iterations/s", nodes, series);
  std::printf(
      "try `%s 0.5` (runtime-bound) vs `%s 50` (kernel-bound) to see where "
      "index launches matter.\n",
      argv[0], argv[0]);
  return 0;
}
