// Stencil demo: the PRK 2-D star stencil with aliased halo partitions.
// Shows dynamic tracing amortizing the dependence analysis across
// iterations (Lee et al. [20]) while results stay identical.
#include <cmath>
#include <cstdio>

#include "apps/stencil.hpp"
#include "obs/profiler.hpp"
#include "runtime/runtime.hpp"

using namespace idxl;
using namespace idxl::apps;

int main() {
  StencilParams params;
  params.nx = params.ny = 96;
  params.px = params.py = 4;
  params.radius = 2;
  params.iterations = 12;

  auto run_with = [&](bool traced) {
    Runtime rt;
    StencilApp app(rt, params);
    for (int it = 0; it < params.iterations; ++it) {
      if (traced) rt.begin_trace(1);
      app.run_iteration();
      if (traced) rt.end_trace(1);
    }
    rt.wait_all();
    std::printf("%-10s dependence tests=%-8llu tasks replayed from trace=%llu\n",
                traced ? "traced" : "untraced",
                static_cast<unsigned long long>(rt.stats().dependence_tests),
                static_cast<unsigned long long>(rt.stats().traced_tasks_replayed));
    return app.output();
  };

  std::printf("stencil: %lldx%lld grid, %lldx%lld tasks, radius %lld, %d steps\n",
              static_cast<long long>(params.nx), static_cast<long long>(params.ny),
              static_cast<long long>(params.px), static_cast<long long>(params.py),
              static_cast<long long>(params.radius), params.iterations);

  const auto untraced = run_with(false);
  const auto traced = run_with(true);
  const auto reference = StencilApp::reference_output(params, params.iterations);

  double max_err = 0, max_diff = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    max_err = std::max(max_err, std::abs(untraced[i] - reference[i]));
    max_diff = std::max(max_diff, std::abs(untraced[i] - traced[i]));
  }
  std::printf("max |error| vs serial reference: %.3e\n", max_err);
  std::printf("max |traced - untraced|:         %.3e (must be exactly 0)\n", max_diff);
  return max_err < 1e-9 && max_diff == 0.0 ? 0 : 1;
}
